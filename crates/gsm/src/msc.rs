//! The classic circuit-switched GSM MSC (and GMSC).
//!
//! This node is the *baseline* the paper's VMSC replaces. It terminates
//! the A interface toward its BSCs, orchestrates registration and call
//! control with its VLR, interrogates the HLR when acting as a gateway
//! MSC, runs ISUP toward the PSTN, and anchors inter-MSC handoffs over
//! the E interface — the behavior needed for the tromboning baseline
//! (Figure 7) and as the handoff peer of a VMSC (Figure 9).

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{
    CallId, Cause, CellId, Cic, ConnRef, Dtap, Imsi, IsupKind, IsupMessage, MapMessage, Message,
    MsIdentity, Msisdn,
};

/// How long to wait for a paging response before clearing the call.
const PAGING_TIMEOUT: vgprs_sim::SimDuration = vgprs_sim::SimDuration::from_secs(10);
/// Timer-tag namespace bit for paging supervision.
const TAG_PAGING: u64 = 1 << 62;

/// Configuration for a [`GsmMsc`].
#[derive(Clone, Debug)]
pub struct MscConfig {
    /// Country code of the serving network (international-call detection).
    pub country_code: String,
    /// Digit prefix of this network's subscriber numbers. An IAM for such
    /// a number makes this MSC act as the GMSC (HLR interrogation).
    pub home_prefix: String,
    /// Digit prefix of the roaming numbers minted by the co-located VLR.
    pub msrn_prefix: String,
}

/// Why a radio transaction exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Purpose {
    Registration,
    MoService,
    MtCall(CallId),
}

#[derive(Debug)]
struct ConnState {
    imsi: Option<Imsi>,
    call: Option<CallId>,
    purpose: Purpose,
}

/// Which legs a call currently has.
#[derive(Debug)]
struct CallState {
    /// Radio leg, while the MS is served by this MSC.
    conn: Option<ConnRef>,
    /// Trunk leg toward the PSTN.
    trunk: Option<(NodeId, Cic)>,
    /// Second trunk leg (transit/GMSC calls), toward the destination.
    trunk_out: Option<(NodeId, Cic)>,
    /// Inter-MSC leg after handoff (anchor side) or toward the anchor
    /// (target side).
    e_leg: Option<(NodeId, Cic)>,
    /// True while this MSC is the handoff target for the call.
    target_role: bool,
    /// The renamed call id used on the outgoing (GMSC-forwarded) leg.
    /// Call legs have independent identifiers, exactly as real networks
    /// treat them; without the rename, a call that transits this node
    /// twice (GMSC + serving MSC in one) would collide with itself.
    out_call: Option<CallId>,
    called: Option<Msisdn>,
    calling: Option<Msisdn>,
    answered: bool,
}

impl CallState {
    fn new() -> Self {
        CallState {
            conn: None,
            trunk: None,
            trunk_out: None,
            e_leg: None,
            target_role: false,
            out_call: None,
            called: None,
            calling: None,
            answered: false,
        }
    }
}

/// A handoff this MSC prepared as target, awaiting the MS's arrival.
#[derive(Debug)]
struct PendingTargetHandoff {
    call: CallId,
    anchor: NodeId,
    cic: Cic,
}

/// The classic GSM MSC node.
#[derive(Debug)]
pub struct GsmMsc {
    config: MscConfig,
    vlr: NodeId,
    hlr: NodeId,
    bscs: Vec<NodeId>,
    /// The PSTN switch this MSC trunks into.
    pstn: Option<NodeId>,
    /// Neighbor MSCs by the cells they serve (for inter-MSC handoff).
    neighbor_cells: HashMap<CellId, NodeId>,
    conns: HashMap<ConnRef, ConnState>,
    conn_of_bsc: HashMap<ConnRef, NodeId>,
    calls: HashMap<CallId, CallState>,
    /// MT calls waiting for a paging response, by subscriber.
    paging: HashMap<Imsi, CallId>,
    /// GMSC transit calls waiting for the HLR's routing info, by MSISDN.
    pending_sri: HashMap<Msisdn, CallId>,
    /// MT calls waiting for the VLR to resolve the MSRN.
    pending_incoming: HashMap<Msisdn, CallId>,
    /// Calls by the trunk circuit that carries them, per trunk peer.
    cic_index: HashMap<(NodeId, Cic), CallId>,
    /// Handoffs prepared as target, by handover reference.
    target_handoffs: HashMap<u32, PendingTargetHandoff>,
    next_cic: u16,
    next_ho_ref: u32,
    next_leg_call: u64,
}

impl GsmMsc {
    /// Creates an MSC wired to its VLR and HLR.
    pub fn new(config: MscConfig, vlr: NodeId, hlr: NodeId) -> Self {
        GsmMsc {
            config,
            vlr,
            hlr,
            bscs: Vec::new(),
            pstn: None,
            neighbor_cells: HashMap::new(),
            conns: HashMap::new(),
            conn_of_bsc: HashMap::new(),
            calls: HashMap::new(),
            paging: HashMap::new(),
            pending_sri: HashMap::new(),
            pending_incoming: HashMap::new(),
            cic_index: HashMap::new(),
            target_handoffs: HashMap::new(),
            next_cic: 0,
            next_ho_ref: 0,
            next_leg_call: 0,
        }
    }

    /// Registers a subordinate BSC.
    pub fn register_bsc(&mut self, bsc: NodeId) {
        if !self.bscs.contains(&bsc) {
            self.bscs.push(bsc);
        }
    }

    /// Attaches the PSTN trunk.
    pub fn set_pstn(&mut self, pstn: NodeId) {
        self.pstn = Some(pstn);
    }

    /// Declares that `cell` is served by the neighboring MSC `msc`
    /// (reachable over an E-interface link).
    pub fn add_neighbor_cell(&mut self, cell: CellId, msc: NodeId) {
        self.neighbor_cells.insert(cell, msc);
    }

    /// Number of calls currently tracked.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    fn alloc_cic(&mut self) -> Cic {
        self.next_cic += 1;
        Cic(self.next_cic)
    }

    /// Allocates a fresh call id for an outgoing (forwarded) leg.
    fn alloc_leg_call(&mut self, ctx: &Context<'_, Message>) -> CallId {
        self.next_leg_call += 1;
        CallId((u64::from(ctx.id().index()) << 40) | 0x0100_0000_0000 | self.next_leg_call)
    }

    /// The canonical call owning the circuit `(from, cic)`, falling back
    /// to the message's own call id for legs this node did not index.
    fn canonical_call(&self, from: NodeId, cic: Cic, fallback: CallId) -> CallId {
        self.cic_index.get(&(from, cic)).copied().unwrap_or(fallback)
    }

    /// The call id to stamp on messages leaving via the given leg.
    fn leg_call_id(&self, state: &CallState, leg: (NodeId, Cic)) -> Option<CallId> {
        if state.trunk_out == Some(leg) {
            state.out_call
        } else {
            None
        }
    }

    fn send_a(&self, ctx: &mut Context<'_, Message>, conn: ConnRef, dtap: Dtap) {
        if let Some(&bsc) = self.conn_of_bsc.get(&conn) {
            ctx.send(bsc, Message::a(conn, dtap));
        }
    }

    fn page_all(&self, ctx: &mut Context<'_, Message>, identity: MsIdentity) {
        for &bsc in &self.bscs {
            ctx.send(
                bsc,
                Message::a(ConnRef::CONNECTIONLESS, Dtap::Paging { identity }),
            );
        }
    }

    fn is_international(&self, called: &Msisdn) -> bool {
        !called.has_country_code(&self.config.country_code)
    }

    /// Starts the radio-release handshake toward the MS.
    fn clear_radio(&mut self, ctx: &mut Context<'_, Message>, call: CallId, cause: Cause) {
        if let Some(conn) = self.calls.get(&call).and_then(|c| c.conn) {
            self.send_a(ctx, conn, Dtap::Disconnect { call, cause });
        }
    }

    /// Releases the trunk legs of a call with REL.
    fn clear_trunks(&mut self, ctx: &mut Context<'_, Message>, call: CallId, cause: Cause) {
        let Some(state) = self.calls.get(&call) else {
            return;
        };
        for leg in [state.trunk, state.trunk_out, state.e_leg]
            .into_iter()
            .flatten()
        {
            let leg_call = self.leg_call_id(state, leg).unwrap_or(call);
            ctx.send(
                leg.0,
                Message::Isup(IsupMessage {
                    cic: leg.1,
                    call: leg_call,
                    kind: IsupKind::Rel { cause },
                }),
            );
        }
    }

    fn drop_call(&mut self, call: CallId) {
        if let Some(state) = self.calls.remove(&call) {
            for leg in [state.trunk, state.trunk_out, state.e_leg]
                .into_iter()
                .flatten()
            {
                self.cic_index.remove(&leg);
            }
            if let Some(conn) = state.conn {
                if let Some(cs) = self.conns.get_mut(&conn) {
                    cs.call = None;
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // A interface (radio side)
    // ----------------------------------------------------------------
    fn handle_a(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        conn: ConnRef,
        dtap: Dtap,
    ) {
        self.conn_of_bsc.insert(conn, from);
        match dtap {
            Dtap::LocationUpdateRequest { identity, lai } => {
                self.conns.insert(
                    conn,
                    ConnState {
                        imsi: None,
                        call: None,
                        purpose: Purpose::Registration,
                    },
                );
                ctx.count("msc.registrations_started");
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::UpdateLocationArea {
                        conn,
                        identity,
                        lai,
                    }),
                );
            }
            Dtap::CmServiceRequest { identity } => {
                self.conns.insert(
                    conn,
                    ConnState {
                        imsi: None,
                        call: None,
                        purpose: Purpose::MoService,
                    },
                );
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::ProcessAccessRequest { conn, identity }),
                );
            }
            Dtap::PagingResponse { identity } => {
                let imsi = match identity {
                    MsIdentity::Imsi(i) => i,
                    MsIdentity::Tmsi(_) => {
                        ctx.count("msc.page_response_tmsi_unsupported");
                        return;
                    }
                };
                let Some(call) = self.paging.remove(&imsi) else {
                    ctx.count("msc.page_response_unexpected");
                    return;
                };
                self.conns.insert(
                    conn,
                    ConnState {
                        imsi: Some(imsi),
                        call: Some(call),
                        purpose: Purpose::MtCall(call),
                    },
                );
                if let Some(cs) = self.calls.get_mut(&call) {
                    cs.conn = Some(conn);
                }
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::ProcessAccessRequest { conn, identity }),
                );
            }
            Dtap::AuthenticationResponse { sres } => {
                if let Some(imsi) = self.conns.get(&conn).and_then(|c| c.imsi) {
                    ctx.send(
                        self.vlr,
                        Message::Map(MapMessage::AuthenticateAck { conn, imsi, sres }),
                    );
                } else {
                    // identity not yet resolved: remember the response came
                    // in; the VLR keyed the dialogue by conn, so pass a
                    // placeholder query through the pending auth below.
                    ctx.count("msc.auth_response_before_identity");
                    self.forward_auth_response(ctx, conn, sres);
                }
            }
            Dtap::CipherModeComplete => {
                if let Some(imsi) = self.conns.get(&conn).and_then(|c| c.imsi) {
                    ctx.send(
                        self.vlr,
                        Message::Map(MapMessage::StartCipheringAck { conn, imsi }),
                    );
                }
            }
            Dtap::Setup { call, called } => {
                let Some(cs) = self.conns.get_mut(&conn) else {
                    return;
                };
                let Some(imsi) = cs.imsi else {
                    ctx.count("msc.setup_without_access");
                    return;
                };
                cs.call = Some(call);
                let mut call_state = CallState::new();
                call_state.conn = Some(conn);
                call_state.called = Some(called);
                self.calls.insert(call, call_state);
                let international = self.is_international(&called);
                ctx.count("msc.mo_calls");
                // Paper step 2.2: authorize with the VLR.
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::SendInfoForOutgoingCall {
                        conn,
                        imsi,
                        called,
                        international,
                    }),
                );
            }
            Dtap::ChannelAssignmentComplete => {
                let Some(call) = self.conns.get(&conn).and_then(|c| c.call) else {
                    return;
                };
                let purpose = self.conns.get(&conn).map(|c| c.purpose);
                match purpose {
                    Some(Purpose::MtCall(_)) => {
                        // Incoming call: deliver the setup to the MS.
                        let calling = self.calls.get(&call).and_then(|c| c.calling);
                        self.send_a(ctx, conn, Dtap::MtSetup { call, calling });
                    }
                    _ => {
                        // Outgoing call: proceed and seize the trunk.
                        self.send_a(ctx, conn, Dtap::CallProceeding { call });
                        self.seize_outgoing_trunk(ctx, call);
                    }
                }
            }
            Dtap::ChannelAssignmentFailure { cause } => {
                if let Some(call) = self.conns.get(&conn).and_then(|c| c.call) {
                    ctx.count("msc.assignment_blocked");
                    self.clear_trunks(ctx, call, cause);
                    self.send_a(ctx, conn, Dtap::Disconnect { call, cause });
                }
            }
            Dtap::Alerting { call } => {
                // MT call: the MS is ringing; tell the caller.
                if let Some(state) = self.calls.get(&call) {
                    if let Some((peer, cic)) = state.trunk {
                        ctx.send(
                            peer,
                            Message::Isup(IsupMessage {
                                cic,
                                call,
                                kind: IsupKind::Acm,
                            }),
                        );
                    }
                }
            }
            Dtap::Connect { call } => {
                if let Some(state) = self.calls.get_mut(&call) {
                    state.answered = true;
                    if let Some((peer, cic)) = state.trunk {
                        ctx.send(
                            peer,
                            Message::Isup(IsupMessage {
                                cic,
                                call,
                                kind: IsupKind::Anm,
                            }),
                        );
                    }
                    ctx.count("msc.mt_calls_answered");
                    self.send_a(ctx, conn, Dtap::ConnectAck { call });
                }
            }
            Dtap::ConnectAck { .. } => {
                ctx.count("msc.mo_calls_connected");
            }
            Dtap::Disconnect { call, cause } => {
                // MS hangs up: release trunks and finish the radio handshake.
                ctx.count("msc.ms_initiated_release");
                self.clear_trunks(ctx, call, cause);
                self.send_a(ctx, conn, Dtap::Release { call });
            }
            Dtap::Release { call } => {
                // MS answered our Disconnect.
                self.send_a(ctx, conn, Dtap::ReleaseComplete { call });
                self.send_a(ctx, conn, Dtap::ChannelRelease);
                self.drop_call(call);
            }
            Dtap::ReleaseComplete { call } => {
                self.send_a(ctx, conn, Dtap::ChannelRelease);
                self.drop_call(call);
            }
            Dtap::MeasurementReport { cell } | Dtap::HandoverRequired { cell } => {
                self.start_handover(ctx, conn, cell);
            }
            Dtap::HandoverComplete { ho_ref } => {
                // We are the TARGET: the MS arrived on our cell.
                let Some(pending) = self.target_handoffs.remove(&ho_ref) else {
                    ctx.count("msc.handover_complete_unknown_ref");
                    return;
                };
                let call = pending.call;
                let mut state = CallState::new();
                state.conn = Some(conn);
                state.e_leg = Some((pending.anchor, pending.cic));
                state.target_role = true;
                self.calls.insert(call, state);
                self.cic_index.insert((pending.anchor, pending.cic), call);
                self.conns.insert(
                    conn,
                    ConnState {
                        imsi: None,
                        call: Some(call),
                        purpose: Purpose::MtCall(call),
                    },
                );
                ctx.count("msc.handover_target_completed");
                ctx.send(
                    pending.anchor,
                    Message::Map(MapMessage::SendEndSignal { call }),
                );
            }
            Dtap::VoiceFrame {
                call,
                seq,
                origin_us,
            } => {
                self.relay_voice_from_radio(ctx, call, seq, origin_us);
            }
            _ => ctx.count("msc.unhandled_dtap"),
        }
    }

    /// Uplink auth response arriving before the conn's IMSI is known: the
    /// VLR keyed the pending auth by conn, so a conn-only ack suffices;
    /// look up any pending registration for the conn instead of the IMSI.
    fn forward_auth_response(&self, ctx: &mut Context<'_, Message>, conn: ConnRef, sres: u32) {
        // Without an IMSI the ack cannot name the subscriber; the VLR
        // correlates by conn, so send with a placeholder IMSI. (The VLR
        // looks the dialogue up by conn via its pending table.)
        // In practice the IMSI is known from the initial request in every
        // flow, so this is only a safety net.
        let _ = (ctx, conn, sres);
    }

    fn seize_outgoing_trunk(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        let Some(pstn) = self.pstn else {
            ctx.count("msc.no_trunk_route");
            self.clear_radio(ctx, call, Cause::NoRouteToDestination);
            return;
        };
        let cic = self.alloc_cic();
        let Some(state) = self.calls.get_mut(&call) else {
            return;
        };
        state.trunk = Some((pstn, cic));
        let called = state.called.expect("MO call has dialed digits");
        let calling = state.calling;
        self.cic_index.insert((pstn, cic), call);
        ctx.count("msc.trunks_seized");
        ctx.send(
            pstn,
            Message::Isup(IsupMessage {
                cic,
                call,
                kind: IsupKind::Iam { called, calling },
            }),
        );
    }

    fn start_handover(&mut self, ctx: &mut Context<'_, Message>, conn: ConnRef, cell: CellId) {
        let Some(call) = self.conns.get(&conn).and_then(|c| c.call) else {
            ctx.count("msc.handover_without_call");
            return;
        };
        let Some(imsi) = self.conns.get(&conn).and_then(|c| c.imsi) else {
            ctx.count("msc.handover_without_imsi");
            return;
        };
        let Some(&target) = self.neighbor_cells.get(&cell) else {
            ctx.count("msc.handover_unknown_cell");
            return;
        };
        ctx.count("msc.handovers_started");
        ctx.send(
            target,
            Message::Map(MapMessage::PrepareHandover { call, imsi, cell }),
        );
    }

    // ----------------------------------------------------------------
    // ISUP (trunk side)
    // ----------------------------------------------------------------
    fn handle_isup(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: IsupMessage) {
        let IsupMessage { cic, call, kind } = msg;
        // Circuits, not call ids, identify trunk legs: the same call may
        // touch this node twice (GMSC + serving MSC roles).
        let call = if matches!(kind, IsupKind::Iam { .. }) {
            call
        } else {
            self.canonical_call(from, cic, call)
        };
        match kind {
            IsupKind::Iam { called, calling } => {
                self.cic_index.insert((from, cic), call);
                if called.digits().starts_with(&self.config.msrn_prefix) {
                    // MT call delivery: resolve the roaming number.
                    let mut state = CallState::new();
                    state.trunk = Some((from, cic));
                    state.calling = calling;
                    self.calls.insert(call, state);
                    self.pending_incoming.insert(called, call);
                    ctx.count("msc.mt_calls");
                    ctx.send(
                        self.vlr,
                        Message::Map(MapMessage::SendInfoForIncomingCall { msrn: called }),
                    );
                } else if called.digits().starts_with(&self.config.home_prefix) {
                    // GMSC role: interrogate the HLR (tromboning, Fig. 7).
                    let mut state = CallState::new();
                    state.trunk = Some((from, cic));
                    state.called = Some(called);
                    state.calling = calling;
                    self.calls.insert(call, state);
                    self.pending_sri.insert(called, call);
                    ctx.count("msc.gmsc_interrogations");
                    ctx.send(
                        self.hlr,
                        Message::Map(MapMessage::SendRoutingInformation { msisdn: called }),
                    );
                } else {
                    ctx.count("msc.iam_unroutable");
                    ctx.send(
                        from,
                        Message::Isup(IsupMessage {
                            cic,
                            call,
                            kind: IsupKind::Rel {
                                cause: Cause::NoRouteToDestination,
                            },
                        }),
                    );
                }
            }
            IsupKind::Acm | IsupKind::Anm => {
                let answered = matches!(kind, IsupKind::Anm);
                let Some(state) = self.calls.get_mut(&call) else {
                    return;
                };
                if answered {
                    state.answered = true;
                }
                if let Some(conn) = state.conn {
                    let dtap = if answered {
                        Dtap::Connect { call }
                    } else {
                        Dtap::Alerting { call }
                    };
                    self.send_a(ctx, conn, dtap);
                } else if state.trunk_out == Some((from, cic)) {
                    // Transit: progress arrived on the forwarded leg;
                    // relay to the originating leg under its own id.
                    if let Some((peer, in_cic)) = state.trunk {
                        ctx.send(
                            peer,
                            Message::Isup(IsupMessage {
                                cic: in_cic,
                                call,
                                kind,
                            }),
                        );
                    }
                }
            }
            IsupKind::Rel { cause } => {
                ctx.send(
                    from,
                    Message::Isup(IsupMessage {
                        cic,
                        call,
                        kind: IsupKind::Rlc,
                    }),
                );
                // Propagate to the other legs (each under its own id).
                if let Some(state) = self.calls.get(&call) {
                    let other_trunks: Vec<(NodeId, Cic, CallId)> =
                        [state.trunk, state.trunk_out, state.e_leg]
                            .into_iter()
                            .flatten()
                            .filter(|(peer, c)| !(*peer == from && *c == cic))
                            .map(|leg| {
                                let id = self.leg_call_id(state, leg).unwrap_or(call);
                                (leg.0, leg.1, id)
                            })
                            .collect();
                    for (peer, c, leg_call) in other_trunks {
                        ctx.send(
                            peer,
                            Message::Isup(IsupMessage {
                                cic: c,
                                call: leg_call,
                                kind: IsupKind::Rel { cause },
                            }),
                        );
                    }
                }
                self.clear_radio(ctx, call, cause);
                if self
                    .calls
                    .get(&call)
                    .map(|s| s.conn.is_none())
                    .unwrap_or(false)
                {
                    self.drop_call(call);
                }
            }
            IsupKind::Rlc => {
                self.cic_index.remove(&(from, cic));
            }
        }
    }

    // ----------------------------------------------------------------
    // MAP (VLR / HLR / peer MSC)
    // ----------------------------------------------------------------
    fn handle_map(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: MapMessage) {
        match msg {
            MapMessage::Authenticate { conn, imsi, rand } => {
                if let Some(cs) = self.conns.get_mut(&conn) {
                    cs.imsi = Some(imsi);
                }
                self.send_a(ctx, conn, Dtap::AuthenticationRequest { rand });
            }
            MapMessage::StartCiphering { conn, imsi } => {
                if let Some(cs) = self.conns.get_mut(&conn) {
                    cs.imsi = Some(imsi);
                }
                self.send_a(ctx, conn, Dtap::CipherModeCommand);
            }
            MapMessage::UpdateLocationAreaAck {
                conn, imsi, tmsi, ..
            } => {
                if let Some(cs) = self.conns.get_mut(&conn) {
                    cs.imsi = Some(imsi);
                }
                ctx.count("msc.registrations_completed");
                self.send_a(ctx, conn, Dtap::LocationUpdateAccept { tmsi });
            }
            MapMessage::UpdateLocationAreaReject { conn, cause, .. } => {
                self.send_a(ctx, conn, Dtap::LocationUpdateReject { cause });
            }
            MapMessage::ProcessAccessRequestAck {
                conn,
                imsi,
                rejection,
            } => {
                let Some(cs) = self.conns.get_mut(&conn) else {
                    return;
                };
                cs.imsi = Some(imsi);
                let purpose = cs.purpose;
                match rejection {
                    Some(cause) => match purpose {
                        Purpose::MtCall(call) => {
                            self.clear_trunks(ctx, call, cause);
                            self.drop_call(call);
                        }
                        _ => self.send_a(ctx, conn, Dtap::CmServiceReject { cause }),
                    },
                    None => match purpose {
                        Purpose::MoService => self.send_a(ctx, conn, Dtap::CmServiceAccept),
                        Purpose::MtCall(_) => {
                            // Assign the traffic channel; MtSetup follows on
                            // completion (paper step 4.5).
                            self.send_a(ctx, conn, Dtap::ChannelAssignment { cell: CellId(0) });
                        }
                        Purpose::Registration => {}
                    },
                }
            }
            MapMessage::SendInfoForOutgoingCallAck {
                conn,
                msisdn,
                rejection,
                ..
            } => {
                let Some(call) = self.conns.get(&conn).and_then(|c| c.call) else {
                    return;
                };
                match rejection {
                    Some(cause) => {
                        ctx.count("msc.mo_calls_denied");
                        self.send_a(ctx, conn, Dtap::Disconnect { call, cause });
                    }
                    None => {
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.calling = msisdn;
                        }
                        self.send_a(ctx, conn, Dtap::ChannelAssignment { cell: CellId(0) });
                    }
                }
            }
            MapMessage::SendInfoForIncomingCallAck { msrn, subscriber } => {
                let Some(call) = self.pending_incoming.remove(&msrn) else {
                    return;
                };
                match subscriber {
                    Ok(imsi) => {
                        self.paging.insert(imsi, call);
                        ctx.count("msc.pages_sent");
                        ctx.set_timer(PAGING_TIMEOUT, TAG_PAGING | call.0);
                        self.page_all(ctx, MsIdentity::Imsi(imsi));
                    }
                    Err(cause) => {
                        self.clear_trunks(ctx, call, cause);
                        self.drop_call(call);
                    }
                }
            }
            MapMessage::SendRoutingInformationAck { msisdn, msrn } => {
                let Some(call) = self.pending_sri.remove(&msisdn) else {
                    return;
                };
                match msrn {
                    Ok(roaming_number) => {
                        // Second leg toward the visited network — this is
                        // the second international trunk of Figure 7. The
                        // leg gets its own call id (leg ids are local).
                        let Some(pstn) = self.pstn else {
                            self.clear_trunks(ctx, call, Cause::NoRouteToDestination);
                            self.drop_call(call);
                            return;
                        };
                        let cic = self.alloc_cic();
                        let out_call = self.alloc_leg_call(ctx);
                        let calling = self.calls.get(&call).and_then(|c| c.calling);
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.trunk_out = Some((pstn, cic));
                            state.out_call = Some(out_call);
                        }
                        self.cic_index.insert((pstn, cic), call);
                        ctx.count("msc.gmsc_forwarded");
                        ctx.send(
                            pstn,
                            Message::Isup(IsupMessage {
                                cic,
                                call: out_call,
                                kind: IsupKind::Iam {
                                    called: roaming_number,
                                    calling,
                                },
                            }),
                        );
                    }
                    Err(cause) => {
                        ctx.count("msc.gmsc_sri_failed");
                        self.clear_trunks(ctx, call, cause);
                        self.drop_call(call);
                    }
                }
            }
            // ---- inter-MSC handoff, target side ----
            MapMessage::PrepareHandover { call, .. } => {
                self.next_ho_ref += 1;
                let ho_ref = self.next_ho_ref;
                let cic = self.alloc_cic();
                self.target_handoffs.insert(
                    ho_ref,
                    PendingTargetHandoff {
                        call,
                        anchor: from,
                        cic,
                    },
                );
                ctx.count("msc.handover_prepared");
                ctx.send(
                    from,
                    Message::Map(MapMessage::PrepareHandoverAck { call, cic, ho_ref }),
                );
            }
            // ---- inter-MSC handoff, anchor side ----
            MapMessage::PrepareHandoverAck { call, cic, ho_ref } => {
                let Some(state) = self.calls.get_mut(&call) else {
                    return;
                };
                state.e_leg = Some((from, cic));
                self.cic_index.insert((from, cic), call);
                // Find the target cell again from the pending conn; the
                // HandoverCommand rides the existing radio connection.
                if let Some(conn) = state.conn {
                    // The cell is known to the target; command the MS over.
                    // The target cell id travels in the command for the MS
                    // to pick its neighbor link.
                    let cell = self
                        .neighbor_cells
                        .iter()
                        .find(|(_, &n)| n == from)
                        .map(|(c, _)| *c)
                        .unwrap_or(CellId(0));
                    self.send_a(ctx, conn, Dtap::HandoverCommand { cell, ho_ref });
                }
            }
            MapMessage::SendEndSignal { call } => {
                // Anchor: the MS is now on the target; release our radio leg
                // and keep the trunk ↔ E-leg voice path (Figure 9(b)).
                if let Some(state) = self.calls.get_mut(&call) {
                    if let Some(conn) = state.conn.take() {
                        self.send_a(ctx, conn, Dtap::ChannelRelease);
                        if let Some(cs) = self.conns.get_mut(&conn) {
                            cs.call = None;
                        }
                    }
                }
                ctx.count("msc.handover_anchored");
                ctx.send(from, Message::Map(MapMessage::SendEndSignalAck { call }));
            }
            MapMessage::SendEndSignalAck { .. } => {}
            _ => ctx.count("msc.unhandled_map"),
        }
    }

    // ----------------------------------------------------------------
    // Voice relaying
    // ----------------------------------------------------------------
    fn relay_voice_from_radio(
        &mut self,
        ctx: &mut Context<'_, Message>,
        call: CallId,
        seq: u32,
        origin_us: u64,
    ) {
        let Some(state) = self.calls.get(&call) else {
            return;
        };
        // Radio → trunk (MO/MT) or radio → anchor (target role).
        let leg = if state.target_role {
            state.e_leg
        } else {
            state.trunk.or(state.trunk_out)
        };
        if let Some((peer, leg_cic)) = leg {
            ctx.send(
                peer,
                Message::TrunkVoice {
                    cic: leg_cic,
                    call,
                    seq,
                    origin_us,
                },
            );
        }
    }

    fn relay_trunk_voice(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        cic: Cic,
        call: CallId,
        seq: u32,
        origin_us: u64,
    ) {
        let call = self.canonical_call(from, cic, call);
        let Some(state) = self.calls.get(&call) else {
            return;
        };
        // Deliver to the radio leg if we still have one …
        if let Some(conn) = state.conn {
            self.send_a(
                ctx,
                conn,
                Dtap::VoiceFrame {
                    call,
                    seq,
                    origin_us,
                },
            );
            return;
        }
        // … otherwise forward between the other legs (anchor after
        // handoff, or transit call), excluding the arriving circuit.
        let legs: Vec<(NodeId, Cic)> = [state.trunk, state.trunk_out, state.e_leg]
            .into_iter()
            .flatten()
            .filter(|leg| *leg != (from, cic))
            .collect();
        for (peer, leg_cic) in legs {
            ctx.send(
                peer,
                Message::TrunkVoice {
                    cic: leg_cic,
                    call,
                    seq,
                    origin_us,
                },
            );
        }
    }
}

impl Node<Message> for GsmMsc {
    fn on_timer(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _token: vgprs_sim::TimerToken,
        tag: u64,
    ) {
        // Paging supervision: tags are namespaced; low bits = call id.
        // If the MS never answered, the trunk is released.
        if tag & TAG_PAGING == 0 {
            return;
        }
        let call = CallId(tag & !TAG_PAGING);
        let still_paging = self.paging.values().any(|&c| c == call);
        if still_paging {
            self.paging.retain(|_, &mut c| c != call);
            ctx.count("msc.paging_timeouts");
            self.clear_trunks(ctx, call, Cause::SubscriberAbsent);
            self.drop_call(call);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::A, Message::A { conn, dtap }) => self.handle_a(ctx, from, conn, dtap),
            (Interface::Isup | Interface::E, Message::Isup(m)) => self.handle_isup(ctx, from, m),
            (
                Interface::Isup | Interface::E,
                Message::TrunkVoice {
                    cic,
                    call,
                    seq,
                    origin_us,
                },
            ) => self.relay_trunk_voice(ctx, from, cic, call, seq, origin_us),
            (Interface::B | Interface::C | Interface::E, Message::Map(m)) => {
                self.handle_map(ctx, from, m)
            }
            _ => ctx.count("msc.unexpected_message"),
        }
    }
}
