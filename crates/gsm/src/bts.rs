//! Base Transceiver Station: the radio head.
//!
//! The BTS relays DTAP between each MS's dedicated radio link (Um) and the
//! shared Abis link toward the BSC, allocating an SCCP-style connection
//! reference per MS transaction. It also models the shared packet data
//! channel (PDCH) pool used by GPRS-capable MSs: packet traffic queues for
//! a finite air rate, which is exactly the contention the paper's Section 6
//! argues makes the 3G TR 22.973 baseline unable to guarantee real-time
//! voice.

use std::collections::{HashMap, VecDeque};

use vgprs_sim::{Context, Interface, Node, NodeId, Payload, SimDuration};
use vgprs_wire::{CellId, ConnRef, Dtap, Imsi, Message};

/// Timer tag: the PDCH finished serializing the head-of-line packet.
const TIMER_PDCH_DONE: u64 = 1;

/// Configuration for a [`Bts`].
#[derive(Clone, Copy, Debug)]
pub struct BtsConfig {
    /// The cell this BTS radiates.
    pub cell: CellId,
    /// Shared packet-channel capacity in bits per second (all packet MSs
    /// in the cell contend for this). GPRS CS-2 with 3 PDCHs ≈ 40 kbit/s.
    pub pdch_bps: u64,
    /// Clip voice frames while the shared PDCH backlog is at or beyond
    /// this many queued packets (`0` disables clipping). vGPRS speech
    /// shares the cell with the packet service, so a saturated PDCH
    /// pool bleeds into in-call quality instead of staying invisible
    /// to voice — the Section 6 contention argument, made measurable.
    pub voice_clip_backlog: usize,
    /// Paging blocks per second the cell's common channel can carry
    /// (`0` disables the limit). A paging flood beyond this budget
    /// steals the shared timeslots from the speech path for the rest
    /// of that second, clipping in-call voice frames — the media-plane
    /// cost of an unthrottled MT storm.
    pub pch_capacity_per_s: u32,
}

impl Default for BtsConfig {
    fn default() -> Self {
        BtsConfig {
            cell: CellId(1),
            pdch_bps: 40_000,
            voice_clip_backlog: 8,
            pch_capacity_per_s: 8,
        }
    }
}

/// The BTS node.
#[derive(Debug)]
pub struct Bts {
    config: BtsConfig,
    bsc: NodeId,
    /// Every MS camped on this cell (registered by the testbed builder).
    mss: Vec<NodeId>,
    conn_to_ms: HashMap<ConnRef, NodeId>,
    ms_to_conn: HashMap<NodeId, ConnRef>,
    /// MSs known to use the packet service, keyed by IMSI (learned from
    /// uplink GMM/LLC traffic).
    packet_ms: HashMap<Imsi, NodeId>,
    next_conn: u32,
    /// Shared PDCH queue: (destination, message) pairs awaiting air time.
    pdch_queue: VecDeque<(NodeId, Message)>,
    pdch_busy: bool,
    /// One-second window index of the last paging broadcast, and how
    /// many pages this cell carried inside it.
    page_window: u64,
    pages_in_window: u32,
}

impl Bts {
    /// Creates a BTS homed on the given BSC.
    pub fn new(config: BtsConfig, bsc: NodeId) -> Self {
        Bts {
            config,
            bsc,
            mss: Vec::new(),
            conn_to_ms: HashMap::new(),
            ms_to_conn: HashMap::new(),
            packet_ms: HashMap::new(),
            next_conn: 0,
            pdch_queue: VecDeque::new(),
            pdch_busy: false,
            page_window: 0,
            pages_in_window: 0,
        }
    }

    /// The cell this BTS serves.
    pub fn cell(&self) -> CellId {
        self.config.cell
    }

    /// Registers an MS as camped on this cell. The testbed builder calls
    /// this when it provisions the Um link.
    pub fn register_ms(&mut self, ms: NodeId) {
        if !self.mss.contains(&ms) {
            self.mss.push(ms);
        }
    }

    /// Number of packets currently waiting for the shared PDCH.
    pub fn pdch_backlog(&self) -> usize {
        self.pdch_queue.len()
    }

    fn alloc_conn(&mut self, ctx: &Context<'_, Message>, ms: NodeId) -> ConnRef {
        self.next_conn += 1;
        // Upper half = BTS node index, lower half = local counter: globally
        // unique without coordination, and never 0 (the connectionless ref).
        let conn = ConnRef((u32::from(ctx.id().index() as u16) << 16) | self.next_conn);
        if let Some(old) = self.ms_to_conn.insert(ms, conn) {
            self.conn_to_ms.remove(&old);
        }
        self.conn_to_ms.insert(conn, ms);
        conn
    }

    /// True if this DTAP message begins a new radio transaction.
    fn starts_transaction(dtap: &Dtap) -> bool {
        matches!(
            dtap,
            Dtap::LocationUpdateRequest { .. }
                | Dtap::CmServiceRequest { .. }
                | Dtap::PagingResponse { .. }
                | Dtap::HandoverComplete { .. }
        )
    }

    /// Queue a packet-service message for the shared air channel, starting
    /// the serializer if idle.
    fn enqueue_pdch(&mut self, ctx: &mut Context<'_, Message>, dest: NodeId, msg: Message) {
        self.pdch_queue.push_back((dest, msg));
        ctx.observe("bts.pdch_backlog", self.pdch_queue.len() as f64);
        if !self.pdch_busy {
            self.serve_pdch(ctx);
        }
    }

    fn serve_pdch(&mut self, ctx: &mut Context<'_, Message>) {
        match self.pdch_queue.front() {
            Some((_, msg)) => {
                self.pdch_busy = true;
                let bits = (msg.wire_size() as u64) * 8;
                let air_time =
                    SimDuration::from_micros(bits.saturating_mul(1_000_000) / self.config.pdch_bps);
                ctx.set_timer(air_time, TIMER_PDCH_DONE);
            }
            None => self.pdch_busy = false,
        }
    }

    /// True while shared-channel saturation is clipping the speech path
    /// — a PDCH packet backlog or a paging flood past the common-channel
    /// budget — so the cell drops this voice frame instead of relaying it.
    fn clips_voice(&self, now_ms: u64, dtap: &Dtap) -> bool {
        if !matches!(dtap, Dtap::VoiceFrame { .. }) {
            return false;
        }
        let pdch_backlogged = self.config.voice_clip_backlog > 0
            && self.pdch_queue.len() >= self.config.voice_clip_backlog;
        let paging_flood = self.config.pch_capacity_per_s > 0
            && now_ms / 1_000 == self.page_window
            && self.pages_in_window > self.config.pch_capacity_per_s;
        pdch_backlogged || paging_flood
    }

    /// Accounts one paging broadcast against the cell's per-second
    /// common-channel budget.
    fn note_page(&mut self, now_ms: u64) {
        let window = now_ms / 1_000;
        if window != self.page_window {
            self.page_window = window;
            self.pages_in_window = 0;
        }
        self.pages_in_window += 1;
    }
}

impl Node<Message> for Bts {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            // ---- uplink: from an MS over its dedicated radio link ----
            (Interface::Um, Message::Um(dtap)) => {
                if self.clips_voice(ctx.now().as_millis(), &dtap) {
                    ctx.count("bts.pdch_voice_clipped");
                    return;
                }
                let conn = if Self::starts_transaction(&dtap) {
                    self.alloc_conn(ctx, from)
                } else {
                    match self.ms_to_conn.get(&from) {
                        Some(c) => *c,
                        None => {
                            ctx.count("bts.uplink_without_conn");
                            return;
                        }
                    }
                };
                ctx.send(self.bsc, Message::abis(conn, dtap));
            }
            // packet service uplink: GMM signaling and LLC user plane share
            // the PDCH with everything else in the cell
            (Interface::Um, m @ (Message::Gmm(_) | Message::Llc { .. })) => {
                let imsi = match &m {
                    Message::Gmm(g) => g.imsi(),
                    Message::Llc { imsi, .. } => *imsi,
                    _ => unreachable!("match arm restricted above"),
                };
                self.packet_ms.insert(imsi, from);
                self.enqueue_pdch(ctx, self.bsc, m);
            }

            // ---- downlink: from the BSC over Abis ----
            (Interface::Abis, Message::Abis { conn, dtap }) => {
                if conn.is_connectionless() {
                    // Paging broadcast: every camped MS hears the PCH, and
                    // the block is charged against the common-channel budget.
                    self.note_page(ctx.now().as_millis());
                    for ms in self.mss.clone() {
                        ctx.send(ms, Message::Um(dtap.clone()));
                    }
                    ctx.count("bts.pages_broadcast");
                    return;
                }
                let Some(&ms) = self.conn_to_ms.get(&conn) else {
                    ctx.count("bts.downlink_unknown_conn");
                    return;
                };
                if self.clips_voice(ctx.now().as_millis(), &dtap) {
                    ctx.count("bts.pdch_voice_clipped");
                    return;
                }
                let ends = matches!(dtap, Dtap::ChannelRelease);
                ctx.send(ms, Message::Um(dtap));
                if ends {
                    self.conn_to_ms.remove(&conn);
                    self.ms_to_conn.remove(&ms);
                }
            }
            // packet service downlink
            (Interface::Abis, m @ (Message::Gmm(_) | Message::Llc { .. })) => {
                let imsi = match &m {
                    Message::Gmm(g) => g.imsi(),
                    Message::Llc { imsi, .. } => *imsi,
                    _ => unreachable!("match arm restricted above"),
                };
                match self.packet_ms.get(&imsi) {
                    Some(&ms) => self.enqueue_pdch(ctx, ms, m),
                    None => ctx.count("bts.downlink_unknown_packet_ms"),
                }
            }

            _ => ctx.count("bts.unexpected_message"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: vgprs_sim::TimerToken, tag: u64) {
        if tag == TIMER_PDCH_DONE {
            if let Some((dest, msg)) = self.pdch_queue.pop_front() {
                ctx.send(dest, msg);
            }
            self.pdch_busy = false;
            self.serve_pdch(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::Network;
    use vgprs_wire::{CallId, Lai, MsIdentity, Msisdn, Tmsi};

    /// Test double that records everything it receives.
    struct Probe {
        got: Vec<(Interface, Message)>,
    }
    impl Probe {
        fn new() -> Self {
            Probe { got: Vec::new() }
        }
    }
    impl Node<Message> for Probe {
        fn on_message(
            &mut self,
            _ctx: &mut Context<'_, Message>,
            _from: NodeId,
            iface: Interface,
            msg: Message,
        ) {
            self.got.push((iface, msg));
        }
    }

    fn lur() -> Dtap {
        Dtap::LocationUpdateRequest {
            identity: MsIdentity::Tmsi(Tmsi(5)),
            lai: Lai::new(466, 92, 1),
        }
    }

    /// Drives the BTS directly by placing a sender node behind the Um link.
    struct Sender {
        peer: NodeId,
        to_send: Vec<Message>,
    }
    impl Node<Message> for Sender {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for m in self.to_send.drain(..) {
                ctx.send(self.peer, m);
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            _m: Message,
        ) {
        }
    }

    fn rig_with_sender(msgs: Vec<Message>) -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let bsc = net.add_node("bsc", Probe::new());
        let bts = net.add_node("bts", Bts::new(BtsConfig::default(), bsc));
        let ms = net.add_node(
            "ms",
            Sender {
                peer: bts,
                to_send: msgs,
            },
        );
        net.connect(ms, bts, Interface::Um, SimDuration::from_millis(1));
        net.connect(bts, bsc, Interface::Abis, SimDuration::from_millis(1));
        net.node_mut::<Bts>(bts).unwrap().register_ms(ms);
        (net, bts, bsc, ms)
    }

    #[test]
    fn transaction_start_gets_fresh_conn() {
        let (mut net, _bts, bsc, _ms) = rig_with_sender(vec![Message::Um(lur())]);
        net.run_until_quiescent();
        let probe = net.node::<Probe>(bsc).unwrap();
        assert_eq!(probe.got.len(), 1);
        match &probe.got[0].1 {
            Message::Abis { conn, dtap } => {
                assert!(!conn.is_connectionless());
                assert_eq!(dtap.name(false), "Location_Update");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mid_transaction_uplink_reuses_conn() {
        let (mut net, _bts, bsc, _ms) = rig_with_sender(vec![
            Message::Um(lur()),
            Message::Um(Dtap::AuthenticationResponse { sres: 9 }),
        ]);
        net.run_until_quiescent();
        let probe = net.node::<Probe>(bsc).unwrap();
        assert_eq!(probe.got.len(), 2);
        let c0 = probe.got[0].1.conn().unwrap();
        let c1 = probe.got[1].1.conn().unwrap();
        assert_eq!(c0, c1);
    }

    #[test]
    fn uplink_without_transaction_dropped() {
        let (mut net, _bts, bsc, _ms) =
            rig_with_sender(vec![Message::Um(Dtap::AuthenticationResponse { sres: 9 })]);
        net.run_until_quiescent();
        assert!(net.node::<Probe>(bsc).unwrap().got.is_empty());
        assert_eq!(net.stats().counter("bts.uplink_without_conn"), 1);
    }

    #[test]
    fn paging_broadcast_reaches_all_camped_ms() {
        let mut net = Network::new(1);
        let bsc = net.add_node("bsc", Probe::new());
        let bts = net.add_node("bts", Bts::new(BtsConfig::default(), bsc));
        let ms1 = net.add_node("ms1", Probe::new());
        let ms2 = net.add_node("ms2", Probe::new());
        net.connect(ms1, bts, Interface::Um, SimDuration::from_millis(1));
        net.connect(ms2, bts, Interface::Um, SimDuration::from_millis(1));
        net.connect(bts, bsc, Interface::Abis, SimDuration::from_millis(1));
        {
            let b = net.node_mut::<Bts>(bts).unwrap();
            b.register_ms(ms1);
            b.register_ms(ms2);
        }
        let imsi = Imsi::parse("466920123456789").unwrap();
        net.inject(
            SimDuration::ZERO,
            bts,
            Message::Abis {
                conn: ConnRef::CONNECTIONLESS,
                dtap: Dtap::Paging {
                    identity: MsIdentity::Imsi(imsi),
                },
            },
        );
        // injected messages arrive on Interface::Internal; emulate Abis by a
        // sender behind the Abis link instead
        net.run_until_quiescent();
        // Internal-iface message is not an Abis message: BTS counts it odd.
        assert_eq!(net.stats().counter("bts.unexpected_message"), 1);

        // Now deliver properly via a sender on the Abis side.
        let mut net = Network::new(1);
        let sender_slot = net.add_node("bsc", Probe::new()); // placeholder BSC target
        let bts = net.add_node("bts", Bts::new(BtsConfig::default(), sender_slot));
        let ms1 = net.add_node("ms1", Probe::new());
        let ms2 = net.add_node("ms2", Probe::new());
        let pager = net.add_node(
            "pager",
            Sender {
                peer: bts,
                to_send: vec![Message::Abis {
                    conn: ConnRef::CONNECTIONLESS,
                    dtap: Dtap::Paging {
                        identity: MsIdentity::Imsi(imsi),
                    },
                }],
            },
        );
        net.connect(ms1, bts, Interface::Um, SimDuration::from_millis(1));
        net.connect(ms2, bts, Interface::Um, SimDuration::from_millis(1));
        net.connect(pager, bts, Interface::Abis, SimDuration::from_millis(1));
        {
            let b = net.node_mut::<Bts>(bts).unwrap();
            b.register_ms(ms1);
            b.register_ms(ms2);
        }
        net.run_until_quiescent();
        for ms in [ms1, ms2] {
            let got = &net.node::<Probe>(ms).unwrap().got;
            assert_eq!(got.len(), 1, "each camped MS hears the page");
            assert!(matches!(
                got[0].1,
                Message::Um(Dtap::Paging { .. })
            ));
        }
        assert_eq!(net.stats().counter("bts.pages_broadcast"), 1);
    }

    #[test]
    fn pdch_serializes_packet_traffic() {
        use vgprs_wire::{GmmMessage, QosProfile};
        let imsi = Imsi::parse("466920123456789").unwrap();
        let _ = QosProfile::signaling();
        // Two GMM messages: second must wait for the first's air time.
        let m = Message::Gmm(GmmMessage::AttachRequest { imsi });
        let (mut net, _bts, bsc, _ms) = rig_with_sender(vec![m.clone(), m]);
        net.run_until_quiescent();
        let probe = net.node::<Probe>(bsc).unwrap();
        assert_eq!(probe.got.len(), 2);
        // At 40 kbit/s a 32-byte GMM message takes 6.4 ms of air time; the
        // second message is queued behind the first.
        assert!(net.now() >= vgprs_sim::SimTime::from_micros(12_800));
    }

    #[test]
    fn downlink_after_channel_release_has_no_conn() {
        let (mut net, bts, bsc, _ms) = rig_with_sender(vec![Message::Um(lur())]);
        net.run_until_quiescent();
        let conn = net.node::<Probe>(bsc).unwrap().got[0].1.conn().unwrap();
        // Sender behind the Abis link releases, then tries to send again.
        let releaser = net.add_node(
            "rel",
            Sender {
                peer: bts,
                to_send: vec![
                    Message::Abis {
                        conn,
                        dtap: Dtap::ChannelRelease,
                    },
                    Message::Abis {
                        conn,
                        dtap: Dtap::Alerting { call: CallId(1) },
                    },
                ],
            },
        );
        net.connect(releaser, bts, Interface::Abis, SimDuration::from_millis(2));
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bts.downlink_unknown_conn"), 1);
    }

    #[test]
    fn saturated_pdch_clips_voice_frames() {
        use vgprs_wire::GmmMessage;
        let imsi = Imsi::parse("466920123456789").unwrap();
        // A 1 bit/s PDCH never drains: each queued GMM packet deepens
        // the backlog past the clip threshold before voice arrives.
        let gmm = Message::Gmm(GmmMessage::AttachRequest { imsi });
        let voice = Message::Um(Dtap::VoiceFrame {
            call: CallId(9),
            seq: 0,
            origin_us: 0,
        });
        let mut to_send = vec![Message::Um(lur())];
        to_send.extend(std::iter::repeat_n(gmm, 8));
        to_send.push(voice);
        let (mut net, _bts, bsc, _ms) = rig_with_sender(to_send);
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bts.pdch_voice_clipped"), 1);
        // The voice frame never reached the BSC; the LUR did.
        let probe = net.node::<Probe>(bsc).unwrap();
        assert!(probe.got.iter().all(|(_, m)| !matches!(
            m,
            Message::Abis {
                dtap: Dtap::VoiceFrame { .. },
                ..
            }
        )));
    }

    #[test]
    fn paging_flood_clips_voice_frames() {
        let imsi = Imsi::parse("466920123456789").unwrap();
        let (mut net, bts, _bsc, _ms) = rig_with_sender(vec![Message::Um(lur())]);
        net.run_until_quiescent();
        // A pager floods the common channel one page past its per-second
        // budget, all inside the first second of the run.
        let page = Message::Abis {
            conn: ConnRef::CONNECTIONLESS,
            dtap: Dtap::Paging {
                identity: MsIdentity::Imsi(imsi),
            },
        };
        let pager = net.add_node(
            "pager",
            Sender {
                peer: bts,
                to_send: vec![page; 9],
            },
        );
        net.connect(pager, bts, Interface::Abis, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bts.pages_broadcast"), 9);
        // The next voice frame inside the flooded second is clipped.
        let talker = net.add_node(
            "talker",
            Sender {
                peer: bts,
                to_send: vec![Message::Um(Dtap::VoiceFrame {
                    call: CallId(9),
                    seq: 0,
                    origin_us: 0,
                })],
            },
        );
        net.connect(talker, bts, Interface::Um, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bts.pdch_voice_clipped"), 1);
        assert!(net.now() < vgprs_sim::SimTime::from_micros(1_000_000));
    }

    #[test]
    fn cell_accessor() {
        let mut net = Network::new(0);
        let bsc = net.add_node("bsc", Probe::new());
        let bts_id = net.add_node(
            "bts",
            Bts::new(
                BtsConfig {
                    cell: CellId(7),
                    pdch_bps: 1,
                    ..BtsConfig::default()
                },
                bsc,
            ),
        );
        assert_eq!(net.node::<Bts>(bts_id).unwrap().cell(), CellId(7));
        let _ = Msisdn::parse("12345").unwrap();
    }
}
