//! End-to-end tests of the TR 22.973 baseline: registration with context
//! teardown, per-call activation (both directions), and the IMSI
//! disclosure the paper's Section 6 criticizes.

use vgprs_gprs::Sgsn;
use vgprs_h323::{Gatekeeper, H323Terminal, TerminalState};
use vgprs_sim::{Network, NodeId, SimDuration, SimTime};
use vgprs_tr22973::{H323Ms, TrMsState, TrZone, TrZoneConfig};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

fn imsi() -> Imsi {
    Imsi::parse("466920000000010").unwrap()
}

fn msisdn() -> Msisdn {
    Msisdn::parse("886912000010").unwrap()
}

fn term_alias() -> Msisdn {
    Msisdn::parse("886220001111").unwrap()
}

struct Rig {
    net: Network<Message>,
    zone: TrZone,
    ms: NodeId,
    term: NodeId,
}

fn rig() -> Rig {
    let mut net = Network::new(42);
    let mut zone = TrZone::build(&mut net, TrZoneConfig::taiwan());
    let ms = zone.add_tr_ms(&mut net, "trms1", imsi(), msisdn());
    let term = zone.add_terminal(&mut net, "term1", term_alias());
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    Rig {
        net,
        zone,
        ms,
        term,
    }
}

#[test]
fn registration_then_context_teardown() {
    let r = rig();
    let ms = r.net.node::<H323Ms>(r.ms).unwrap();
    assert_eq!(ms.state(), TrMsState::Idle);
    assert!(
        !ms.context_active(),
        "TR 22.973: the PDP context is deactivated when idle"
    );
    assert_eq!(
        r.net.node::<Sgsn>(r.zone.sgsn).unwrap().active_pdp_count(),
        0
    );
    assert!(r.net.trace().contains_subsequence(&[
        "GPRS_Attach_Request",
        "Activate_PDP_Context_Request",
        "LLC:RAS_RRQ",
        "RAS_RCF",
        "Deactivate_PDP_Context_Request",
    ]));
}

#[test]
fn imsi_disclosed_to_gatekeeper() {
    let r = rig();
    let gk = r.net.node::<Gatekeeper>(r.zone.gk).unwrap();
    assert_eq!(
        gk.imsi_disclosures(),
        1,
        "the TR architecture leaks the IMSI into the H.323 domain"
    );
    assert_eq!(r.net.stats().counter("gk.imsi_disclosures"), 1);
}

#[test]
fn origination_reactivates_context_per_call() {
    let mut r = rig();
    r.net.trace_mut().clear();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(10_000_000));
    assert_eq!(
        r.net.node::<H323Ms>(r.ms).unwrap().state(),
        TrMsState::Active
    );
    assert_eq!(
        r.net.node::<H323Terminal>(r.term).unwrap().state(),
        TerminalState::Active
    );
    // activation happened before the ARQ could even be sent
    assert!(r.net.trace().contains_subsequence(&[
        "Activate_PDP_Context_Request",
        "Activate_PDP_Context_Accept",
        "LLC:RAS_ARQ",
        "LLC:Q931_Setup",
    ]));
    // and voice flows over the packet air interface
    let ms = r.net.node::<H323Ms>(r.ms).unwrap();
    assert!(ms.frames_received > 50, "{}", ms.frames_received);
}

#[test]
fn termination_uses_network_initiated_activation() {
    let mut r = rig();
    r.net.trace_mut().clear();
    // The wireline terminal calls the (idle, context-less) TR MS.
    r.net.inject(
        SimDuration::ZERO,
        r.term,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: msisdn(),
        }),
    );
    r.net.run_until(SimTime::from_micros(12_000_000));
    // Section 6's description of the TR termination path:
    assert!(
        r.net.trace().contains_subsequence(&[
            "Q931_Setup",                      // caller → GGSN (static addr)
            "GTP_PDU_Notification_Request",    // GGSN → SGSN
            "Request_PDP_Context_Activation",  // SGSN → MS
            "Activate_PDP_Context_Request",    // MS activates
            "Activate_PDP_Context_Accept",
            "LLC:Q931_Setup",                  // buffered Setup delivered
            "LLC:Q931_Alerting",
            "LLC:Q931_Connect",
        ]),
        "termination ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(r.net.trace()).render()
    );
    assert_eq!(
        r.net.node::<H323Ms>(r.ms).unwrap().state(),
        TrMsState::Active
    );
    assert_eq!(r.net.stats().counter("trms.network_initiated_activations"), 1);
}

#[test]
fn release_tears_context_down_again() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(8_000_000));
    r.net
        .inject(SimDuration::ZERO, r.ms, Message::Cmd(Command::Hangup));
    r.net.run_until_quiescent();
    let ms = r.net.node::<H323Ms>(r.ms).unwrap();
    assert_eq!(ms.state(), TrMsState::Idle);
    assert!(!ms.context_active());
    assert_eq!(
        r.net.node::<Sgsn>(r.zone.sgsn).unwrap().active_pdp_count(),
        0
    );
    // registration + call = two activations, two deactivations
    assert_eq!(r.net.stats().counter("trms.activations"), 2);
    assert_eq!(r.net.stats().counter("trms.deactivations"), 2);
}

#[test]
fn always_on_ablation_skips_reactivation() {
    let mut net = Network::new(42);
    let mut zone = TrZone::build(&mut net, TrZoneConfig::taiwan());
    let ms = zone.add_tr_ms(&mut net, "trms1", imsi(), msisdn());
    let term = zone.add_terminal(&mut net, "term1", term_alias());
    // Flip the ablation switch: keep the context alive while idle.
    let _ = term;
    net.node_mut::<H323Ms>(ms)
        .unwrap()
        .set_deactivate_when_idle(false);
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    assert!(net.node::<H323Ms>(ms).unwrap().context_active());
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    net.run_until(SimTime::from_micros(8_000_000));
    assert_eq!(net.node::<H323Ms>(ms).unwrap().state(), TrMsState::Active);
    // one activation total (registration), none for the call
    assert_eq!(net.stats().counter("trms.activations"), 1);
}

#[test]
fn two_tr_ms_call_each_other_over_shared_pdch() {
    let mut net = Network::new(42);
    let mut zone = TrZone::build(&mut net, TrZoneConfig::taiwan());
    let a = zone.add_tr_ms(
        &mut net,
        "a",
        Imsi::parse("466920000000011").unwrap(),
        Msisdn::parse("886912000011").unwrap(),
    );
    let b = zone.add_tr_ms(
        &mut net,
        "b",
        Imsi::parse("466920000000012").unwrap(),
        Msisdn::parse("886912000012").unwrap(),
    );
    net.inject(SimDuration::ZERO, a, Message::Cmd(Command::PowerOn));
    net.inject(SimDuration::from_millis(50), b, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        a,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: Msisdn::parse("886912000012").unwrap(),
        }),
    );
    net.run_until(SimTime::from_micros(15_000_000));
    assert_eq!(net.node::<H323Ms>(a).unwrap().state(), TrMsState::Active);
    assert_eq!(net.node::<H323Ms>(b).unwrap().state(), TrMsState::Active);
    // Both streams cross the same 40 kbit/s PDCH: two 13 kbit/s GSM
    // streams + overhead saturate it, so frames arrive but queue.
    assert!(net.node::<H323Ms>(a).unwrap().frames_received > 20);
    assert!(net.node::<H323Ms>(b).unwrap().frames_received > 20);
    let h = net.stats().histogram("trms.voice_e2e_ms").unwrap();
    assert!(
        h.percentile(95.0) > 20.0,
        "shared-PDCH queueing should inflate the tail: p95 = {}",
        h.percentile(95.0)
    );
}
