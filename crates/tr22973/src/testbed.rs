//! Builder for a TR 22.973-style network: the same GPRS core and H.323
//! zone as a vGPRS deployment, but *no VMSC* — the MSs are H.323
//! terminals themselves and everything rides the packet radio path.

use vgprs_gprs::{Ggsn, IpRouter, Sgsn};
use vgprs_gsm::{Bsc, BscConfig, Bts, BtsConfig};
use vgprs_h323::{Gatekeeper, GatekeeperConfig, H323Terminal, TerminalConfig};
use vgprs_sim::{Interface, Network, NodeId};
use vgprs_wire::{CellId, Imsi, Ipv4Addr, Message, Msisdn, PointCode, TransportAddr};

pub use vgprs_core::LatencyProfile;

use crate::ms::{H323Ms, TrMsConfig};

/// Configuration for one TR 22.973 zone.
#[derive(Clone, Debug)]
pub struct TrZoneConfig {
    /// Node-name prefix.
    pub name: String,
    /// Serving cell.
    pub cell: CellId,
    /// GGSN PDP address pool; static addresses are carved from
    /// `pool.0 | 0x0000_64xx`.
    pub pool: (Ipv4Addr, u8),
    /// Gatekeeper address.
    pub gk_addr: TransportAddr,
    /// Gatekeeper bandwidth budget.
    pub gk_bandwidth: u32,
    /// Shared packet channel rate at the BTS — the contended resource
    /// behind the paper's real-time argument.
    pub pdch_bps: u64,
    /// Link latencies.
    pub latency: LatencyProfile,
}

impl TrZoneConfig {
    /// Defaults mirroring `VgprsZoneConfig::taiwan`
    /// so C1/C2 comparisons hold
    /// everything but the architecture constant.
    pub fn taiwan() -> Self {
        TrZoneConfig {
            name: "tr".into(),
            cell: CellId(1),
            pool: (Ipv4Addr::from_octets(10, 200, 0, 0), 16),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 1, 0, 2), 1719),
            gk_bandwidth: 1_000_000,
            pdch_bps: 40_000,
            latency: LatencyProfile::default(),
        }
    }
}

/// Handles to a built TR zone.
#[derive(Clone, Debug)]
pub struct TrZone {
    /// Base transceiver station (shared PDCH).
    pub bts: NodeId,
    /// Base station controller (PCU).
    pub bsc: NodeId,
    /// Serving GPRS support node.
    pub sgsn: NodeId,
    /// Gateway GPRS support node.
    pub ggsn: NodeId,
    /// PSDN router.
    pub router: NodeId,
    /// Gatekeeper (receives IMSIs in this architecture).
    pub gk: NodeId,
    /// The gatekeeper's address.
    pub gk_addr: TransportAddr,
    /// Latencies.
    pub latency: LatencyProfile,
    pool_base: Ipv4Addr,
    name: String,
    next_static: u8,
    next_host: u8,
}

impl TrZone {
    /// Builds the zone inside `net`.
    pub fn build(net: &mut Network<Message>, cfg: TrZoneConfig) -> TrZone {
        let n = |suffix: &str| format!("{}.{}", cfg.name, suffix);
        let lat = cfg.latency;
        let router = net.add_node(&n("router"), IpRouter::new());
        let gk = net.add_node(
            &n("gk"),
            Gatekeeper::new(
                GatekeeperConfig {
                    addr: cfg.gk_addr,
                    bandwidth_budget: cfg.gk_bandwidth,
                    shed_utilization: 0.0,
                },
                router,
            ),
        );
        let ggsn = net.add_node(&n("ggsn"), Ggsn::new(cfg.pool.0, cfg.pool.1));
        let sgsn = net.add_node(&n("sgsn"), Sgsn::new(PointCode(51), ggsn));
        // The BSC's circuit side is unused here (no MSC in the VoIP path);
        // its PCU points at the SGSN.
        let bsc = net.add_node(
            &n("bsc"),
            Bsc::new(BscConfig { tch_capacity: 0 }, sgsn),
        );
        net.node_mut::<Bsc>(bsc).expect("just created").set_sgsn(sgsn);
        let bts = net.add_node(
            &n("bts"),
            Bts::new(
                BtsConfig {
                    cell: cfg.cell,
                    pdch_bps: cfg.pdch_bps,
                    ..BtsConfig::default()
                },
                bsc,
            ),
        );
        net.node_mut::<Bsc>(bsc)
            .expect("just created")
            .register_bts(bts, cfg.cell);

        net.connect(bts, bsc, Interface::Abis, lat.abis);
        net.connect(bsc, sgsn, Interface::Gb, lat.gb);
        net.connect(sgsn, ggsn, Interface::Gn, lat.gn);
        net.connect(ggsn, router, Interface::Gi, lat.lan);
        net.connect(gk, router, Interface::Lan, lat.lan);
        {
            let r = net.node_mut::<IpRouter>(router).expect("just created");
            r.add_prefix(cfg.pool.0, cfg.pool.1, ggsn);
            r.add_host(cfg.gk_addr.ip, gk);
        }
        net.node_mut::<Ggsn>(ggsn)
            .expect("just created")
            .set_router(router);

        TrZone {
            bts,
            bsc,
            sgsn,
            ggsn,
            router,
            gk,
            gk_addr: cfg.gk_addr,
            latency: lat,
            pool_base: cfg.pool.0,
            name: cfg.name,
            next_static: 0,
            next_host: 10,
        }
    }

    /// Adds a TR mobile station: provisions its static PDP address at the
    /// GGSN and camps it on the zone's cell.
    pub fn add_tr_ms(
        &mut self,
        net: &mut Network<Message>,
        label: &str,
        imsi: Imsi,
        msisdn: Msisdn,
    ) -> NodeId {
        self.next_static += 1;
        let static_addr = Ipv4Addr(self.pool_base.0 | 0x0000_6400 | u32::from(self.next_static));
        net.node_mut::<Ggsn>(self.ggsn)
            .expect("zone GGSN")
            .provision_static(imsi, static_addr, self.sgsn);
        let ms = net.add_node(
            &format!("{}.{}", self.name, label),
            H323Ms::new(
                TrMsConfig::new(imsi, msisdn, static_addr, self.gk_addr),
                self.bts,
            ),
        );
        net.connect(ms, self.bts, Interface::Um, self.latency.um);
        net.node_mut::<Bts>(self.bts)
            .expect("zone BTS")
            .register_ms(ms);
        ms
    }

    /// Adds a wireline H.323 terminal on the zone's LAN.
    pub fn add_terminal(
        &mut self,
        net: &mut Network<Message>,
        label: &str,
        alias: Msisdn,
    ) -> NodeId {
        self.next_host += 1;
        let addr = TransportAddr::new(Ipv4Addr::from_octets(10, 1, 0, self.next_host), 1720);
        let term = net.add_node(
            &format!("{}.{}", self.name, label),
            H323Terminal::new(TerminalConfig::new(alias, addr, self.gk_addr), self.router),
        );
        net.connect(term, self.router, Interface::Lan, self.latency.lan);
        net.node_mut::<IpRouter>(self.router)
            .expect("zone router")
            .add_host(addr.ip, term);
        term
    }
}
