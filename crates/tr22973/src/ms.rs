//! The 3G TR 22.973 mobile station: an H.323 terminal *inside the
//! handset*.
//!
//! This is the baseline the paper argues against (Section 6). The MS
//! carries its own vocoder and H.323 stack; all of its traffic — RAS,
//! Q.931, RTP — rides the shared packet radio channel (PDCH) through the
//! BSC's PCU into the GPRS core. Following the TR, the PDP context is
//! **deactivated whenever the MS is idle** and re-activated per call:
//! MS-initiated for origination, network-initiated (via the GGSN's PDU
//! notification on the static PDP address) for termination.

use vgprs_sim::{Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{
    CallId, Cause, Command, Crv, GmmMessage, Imsi, IpPacket, IpPayload, Ipv4Addr, Message,
    Msisdn, Nsapi, Q931Kind, Q931Message, QosProfile, RasMessage, RtpPacket, TransportAddr,
    PAYLOAD_TYPE_GSM,
};

/// Timer tag: auto-answer.
const TIMER_ANSWER: u64 = 1;
/// Timer tag: next RTP frame.
const TIMER_VOICE: u64 = 2;

/// The TR MS's single PDP context.
fn nsapi() -> Nsapi {
    Nsapi::new(6).expect("6 is a valid NSAPI")
}

/// Why a PDP context activation is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActivationPurpose {
    /// Initial registration with the gatekeeper.
    Register,
    /// Outgoing call.
    Originate,
    /// Network-requested (incoming call pending at the GGSN).
    Terminate,
}

/// Observable state of the TR MS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrMsState {
    /// Powered off.
    Off,
    /// GPRS attach in progress.
    Attaching,
    /// PDP context activating.
    Activating,
    /// RAS registration outstanding.
    Registering,
    /// Registered; per the TR the context is torn down while idle.
    Idle,
    /// Originating: admission requested.
    RequestingAdmission,
    /// Setup sent.
    Calling,
    /// Remote is ringing.
    Ringback,
    /// Incoming: answering admission requested.
    AnsweringAdmission,
    /// Ringing locally.
    Ringing,
    /// In conversation.
    Active,
}

/// Configuration for a [`H323Ms`].
#[derive(Clone, Copy, Debug)]
pub struct TrMsConfig {
    /// Subscriber identity (disclosed to the gatekeeper — the TR's
    /// confidentiality cost).
    pub imsi: Imsi,
    /// Dialable number / H.323 alias.
    pub msisdn: Msisdn,
    /// The static PDP address provisioned at the GGSN (required for
    /// network-initiated activation, as the paper's Section 6 explains).
    pub static_addr: Ipv4Addr,
    /// The gatekeeper's RAS address.
    pub gk: TransportAddr,
    /// Auto-answer delay.
    pub answer_after: Option<SimDuration>,
    /// Send RTP on connect.
    pub talk_on_connect: bool,
    /// Tear the PDP context down when idle (the TR behavior). `false`
    /// keeps it always-on — the ablation that isolates the paper's C2
    /// claim.
    pub deactivate_when_idle: bool,
}

impl TrMsConfig {
    /// TR-faithful defaults.
    pub fn new(imsi: Imsi, msisdn: Msisdn, static_addr: Ipv4Addr, gk: TransportAddr) -> Self {
        TrMsConfig {
            imsi,
            msisdn,
            static_addr,
            gk,
            answer_after: Some(SimDuration::from_secs(2)),
            talk_on_connect: true,
            deactivate_when_idle: true,
        }
    }
}

/// The TR 22.973 mobile station node.
#[derive(Debug)]
pub struct H323Ms {
    config: TrMsConfig,
    /// The serving BTS (all traffic crosses the shared PDCH).
    bts: NodeId,
    state: TrMsState,
    context_active: bool,
    attached: bool,
    purpose: Option<ActivationPurpose>,
    call: Option<CallId>,
    crv: Crv,
    next_crv: u16,
    pending_called: Option<Msisdn>,
    remote_signal: Option<TransportAddr>,
    remote_media: Option<TransportAddr>,
    dialed_at: Option<SimTime>,
    reg_started: Option<SimTime>,
    connected_at: Option<SimTime>,
    voice_timer: Option<TimerToken>,
    voice_seq: u16,
    /// RTP frames received over the packet air interface.
    pub frames_received: u64,
    /// Calls connected.
    pub calls_connected: u64,
}

impl H323Ms {
    /// Creates a powered-off TR MS camped on `bts`.
    pub fn new(config: TrMsConfig, bts: NodeId) -> Self {
        H323Ms {
            config,
            bts,
            state: TrMsState::Off,
            context_active: false,
            attached: false,
            purpose: None,
            call: None,
            crv: Crv(0),
            next_crv: 0,
            pending_called: None,
            remote_signal: None,
            remote_media: None,
            dialed_at: None,
            reg_started: None,
            connected_at: None,
            voice_timer: None,
            voice_seq: 0,
            frames_received: 0,
            calls_connected: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TrMsState {
        self.state
    }

    /// True while the PDP context is up.
    pub fn context_active(&self) -> bool {
        self.context_active
    }

    /// Toggles the TR idle-teardown behavior (the C2 ablation switch).
    /// Call before the MS powers on.
    pub fn set_deactivate_when_idle(&mut self, v: bool) {
        self.config.deactivate_when_idle = v;
    }

    fn signal_addr(&self) -> TransportAddr {
        TransportAddr::new(self.config.static_addr, 1720)
    }

    fn media_addr(&self) -> TransportAddr {
        TransportAddr::new(self.config.static_addr, 30_000)
    }

    fn send_ip(&self, ctx: &mut Context<'_, Message>, dst: TransportAddr, payload: IpPayload) {
        ctx.send(
            self.bts,
            Message::Llc {
                imsi: self.config.imsi,
                nsapi: nsapi(),
                inner: Box::new(IpPacket::new(self.signal_addr(), dst, payload)),
            },
        );
    }

    fn send_ras(&self, ctx: &mut Context<'_, Message>, ras: RasMessage) {
        self.send_ip(ctx, self.config.gk, IpPayload::Ras(ras));
    }

    fn send_q931(&self, ctx: &mut Context<'_, Message>, kind: Q931Kind) {
        let (Some(call), Some(dst)) = (self.call, self.remote_signal) else {
            return;
        };
        self.send_ip(
            ctx,
            dst,
            IpPayload::Q931(Q931Message {
                crv: self.crv,
                call,
                kind,
            }),
        );
    }

    fn activate(&mut self, ctx: &mut Context<'_, Message>, purpose: ActivationPurpose) {
        self.purpose = Some(purpose);
        self.state = TrMsState::Activating;
        ctx.count("trms.activations");
        ctx.send(
            self.bts,
            Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi: self.config.imsi,
                nsapi: nsapi(),
                qos: QosProfile::realtime_voice(),
                static_addr: Some(self.config.static_addr),
            }),
        );
    }

    fn deactivate_if_idle(&mut self, ctx: &mut Context<'_, Message>) {
        if self.config.deactivate_when_idle && self.context_active {
            self.context_active = false;
            ctx.count("trms.deactivations");
            ctx.send(
                self.bts,
                Message::Gmm(GmmMessage::DeactivatePdpContextRequest {
                    imsi: self.config.imsi,
                    nsapi: nsapi(),
                }),
            );
        }
    }

    fn start_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if self.voice_timer.is_none() {
            self.voice_timer = Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
        }
    }

    fn stop_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(t) = self.voice_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn enter_active(&mut self, ctx: &mut Context<'_, Message>) {
        self.state = TrMsState::Active;
        self.calls_connected += 1;
        self.connected_at = Some(ctx.now());
        ctx.count("trms.calls_connected");
        if let Some(at) = self.dialed_at.take() {
            ctx.observe_duration("trms.call_setup_ms", ctx.now().duration_since(at));
        }
        if self.config.talk_on_connect {
            self.start_voice(ctx);
        }
    }

    fn end_call(&mut self, ctx: &mut Context<'_, Message>) {
        self.stop_voice(ctx);
        if let Some(call) = self.call.take() {
            let duration_ms = self
                .connected_at
                .take()
                .map(|at| ctx.now().duration_since(at).as_millis())
                .unwrap_or(0);
            self.send_ras(ctx, RasMessage::Drq { call, duration_ms });
        }
        self.remote_signal = None;
        self.remote_media = None;
        self.pending_called = None;
        self.state = TrMsState::Idle;
        // The TR tears the context down after every call.
        self.deactivate_if_idle(ctx);
    }

    fn answer(&mut self, ctx: &mut Context<'_, Message>) {
        if self.state == TrMsState::Ringing {
            let media_addr = self.media_addr();
            self.send_q931(ctx, Q931Kind::Connect { media_addr });
            self.enter_active(ctx);
        }
    }

    fn handle_command(&mut self, ctx: &mut Context<'_, Message>, cmd: Command) {
        match cmd {
            Command::PowerOn => {
                if self.state != TrMsState::Off {
                    return;
                }
                self.state = TrMsState::Attaching;
                self.reg_started = Some(ctx.now());
                ctx.send(
                    self.bts,
                    Message::Gmm(GmmMessage::AttachRequest {
                        imsi: self.config.imsi,
                    }),
                );
            }
            Command::Dial { call, called } => {
                if self.state != TrMsState::Idle {
                    ctx.count("trms.dial_while_busy");
                    return;
                }
                self.call = Some(call);
                self.pending_called = Some(called);
                self.dialed_at = Some(ctx.now());
                ctx.count("trms.calls_dialed");
                if self.context_active {
                    self.request_admission(ctx);
                } else {
                    // The paper's Section 6 point: a context must first be
                    // (re)established for every call.
                    self.activate(ctx, ActivationPurpose::Originate);
                }
            }
            Command::Answer => self.answer(ctx),
            Command::Hangup
                if self.call.is_some() => {
                    self.send_q931(
                        ctx,
                        Q931Kind::ReleaseComplete {
                            cause: Cause::NormalClearing,
                        },
                    );
                    self.end_call(ctx);
                }
            Command::StartTalking
                if self.state == TrMsState::Active => {
                    self.start_voice(ctx);
                }
            Command::StopTalking => self.stop_voice(ctx),
            _ => {}
        }
    }

    fn request_admission(&mut self, ctx: &mut Context<'_, Message>) {
        let (Some(call), Some(called)) = (self.call, self.pending_called) else {
            return;
        };
        self.state = TrMsState::RequestingAdmission;
        self.send_ras(
            ctx,
            RasMessage::Arq {
                call,
                called,
                answering: false,
                bandwidth: 160,
            },
        );
    }

    fn handle_gmm(&mut self, ctx: &mut Context<'_, Message>, msg: GmmMessage) {
        match msg {
            GmmMessage::AttachAccept { .. } => {
                self.attached = true;
                // Register with the gatekeeper: context up first.
                self.activate(ctx, ActivationPurpose::Register);
            }
            GmmMessage::AttachReject { .. } => {
                ctx.count("trms.attach_rejected");
                self.state = TrMsState::Off;
            }
            GmmMessage::ActivatePdpContextAccept { .. } => {
                self.context_active = true;
                match self.purpose.take() {
                    Some(ActivationPurpose::Register) => {
                        self.state = TrMsState::Registering;
                        // The TR integration hands the IMSI to the H.323
                        // domain (experiment C4 counts this).
                        self.send_ras(
                            ctx,
                            RasMessage::Rrq {
                                alias: self.config.msisdn,
                                transport: self.signal_addr(),
                                imsi: Some(self.config.imsi),
                            },
                        );
                    }
                    Some(ActivationPurpose::Originate) => self.request_admission(ctx),
                    Some(ActivationPurpose::Terminate) | None => {
                        // Incoming call: the GGSN will now flush the
                        // buffered Setup; wait for it.
                        self.state = TrMsState::Idle;
                    }
                }
            }
            GmmMessage::ActivatePdpContextReject { .. } => {
                ctx.count("trms.activation_rejected");
                self.purpose = None;
                self.call = None;
                self.pending_called = None;
                self.state = if self.attached {
                    TrMsState::Idle
                } else {
                    TrMsState::Off
                };
            }
            GmmMessage::RequestPdpContextActivation { .. } => {
                // Network-initiated activation for an incoming call.
                ctx.count("trms.network_initiated_activations");
                if !self.context_active {
                    self.activate(ctx, ActivationPurpose::Terminate);
                }
            }
            GmmMessage::DeactivatePdpContextAccept { .. } => {}
            _ => ctx.count("trms.unhandled_gmm"),
        }
    }

    fn handle_ras(&mut self, ctx: &mut Context<'_, Message>, ras: RasMessage) {
        match ras {
            RasMessage::Rcf { .. } => {
                if self.state == TrMsState::Registering {
                    self.state = TrMsState::Idle;
                    ctx.count("trms.registered");
                    if let Some(at) = self.reg_started.take() {
                        ctx.observe_duration(
                            "trms.registration_ms",
                            ctx.now().duration_since(at),
                        );
                    }
                    // Step 6 of the TR's figure 7: deactivate when idle.
                    self.deactivate_if_idle(ctx);
                }
            }
            RasMessage::Acf {
                call,
                dest_call_signal_addr,
            } => {
                if self.call != Some(call) {
                    return;
                }
                match self.state {
                    TrMsState::RequestingAdmission => {
                        self.next_crv += 1;
                        self.crv = Crv(self.next_crv);
                        self.remote_signal = Some(dest_call_signal_addr);
                        self.state = TrMsState::Calling;
                        let called = self.pending_called.expect("dialing");
                        let signal_addr = self.signal_addr();
                        let media_addr = self.media_addr();
                        self.send_q931(
                            ctx,
                            Q931Kind::Setup {
                                calling: Some(self.config.msisdn),
                                called,
                                signal_addr,
                                media_addr,
                            },
                        );
                    }
                    TrMsState::AnsweringAdmission => {
                        self.state = TrMsState::Ringing;
                        ctx.count("trms.ringing");
                        self.send_q931(ctx, Q931Kind::Alerting);
                        if let Some(delay) = self.config.answer_after {
                            ctx.set_timer(delay, TIMER_ANSWER);
                        }
                    }
                    _ => {}
                }
            }
            RasMessage::Arj { call, cause } => {
                if self.call != Some(call) {
                    return;
                }
                ctx.count("trms.admission_rejected");
                if self.state == TrMsState::AnsweringAdmission {
                    self.send_q931(ctx, Q931Kind::ReleaseComplete { cause });
                }
                self.call = None;
                self.pending_called = None;
                self.state = TrMsState::Idle;
                self.deactivate_if_idle(ctx);
            }
            RasMessage::Dcf { .. } => {}
            _ => ctx.count("trms.unhandled_ras"),
        }
    }

    fn handle_q931(&mut self, ctx: &mut Context<'_, Message>, msg: Q931Message) {
        match msg.kind {
            Q931Kind::Setup {
                called,
                signal_addr,
                media_addr,
                ..
            } => {
                if self.call.is_some() {
                    // Busy: refuse directly.
                    let reply = Q931Message {
                        crv: msg.crv,
                        call: msg.call,
                        kind: Q931Kind::ReleaseComplete {
                            cause: Cause::UserBusy,
                        },
                    };
                    self.send_ip(ctx, signal_addr, IpPayload::Q931(reply));
                    return;
                }
                self.call = Some(msg.call);
                self.crv = msg.crv;
                self.remote_signal = Some(signal_addr);
                self.remote_media = Some(media_addr);
                self.send_q931(ctx, Q931Kind::CallProceeding);
                self.state = TrMsState::AnsweringAdmission;
                self.send_ras(
                    ctx,
                    RasMessage::Arq {
                        call: msg.call,
                        called,
                        answering: true,
                        bandwidth: 160,
                    },
                );
            }
            Q931Kind::CallProceeding => {}
            Q931Kind::Alerting => {
                if self.state == TrMsState::Calling && self.call == Some(msg.call) {
                    self.state = TrMsState::Ringback;
                    if let Some(at) = self.dialed_at {
                        ctx.observe_duration(
                            "trms.post_dial_delay_ms",
                            ctx.now().duration_since(at),
                        );
                    }
                }
            }
            Q931Kind::Connect { media_addr } => {
                if self.call == Some(msg.call)
                    && matches!(self.state, TrMsState::Calling | TrMsState::Ringback)
                {
                    self.remote_media = Some(media_addr);
                    self.enter_active(ctx);
                }
            }
            Q931Kind::ReleaseComplete { .. } => {
                if self.call == Some(msg.call) {
                    ctx.count("trms.released_by_peer");
                    self.end_call(ctx);
                }
            }
        }
    }
}

impl Node<Message> for H323Ms {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(cmd)) => self.handle_command(ctx, cmd),
            (Interface::Um, Message::Gmm(m)) => self.handle_gmm(ctx, m),
            (Interface::Um, Message::Llc { inner, .. }) => match inner.payload {
                IpPayload::Ras(r) => self.handle_ras(ctx, r),
                IpPayload::Q931(q) => self.handle_q931(ctx, q),
                IpPayload::Rtp(rtp) => {
                    if self.call == Some(rtp.call) {
                        self.frames_received += 1;
                        ctx.count("trms.rtp_received");
                        let delay = ctx.now().as_micros().saturating_sub(rtp.origin_us);
                        ctx.observe("trms.voice_e2e_ms", delay as f64 / 1000.0);
                    }
                }
            },
            _ => ctx.count("trms.unexpected_message"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: TimerToken, tag: u64) {
        match tag {
            TIMER_ANSWER => self.answer(ctx),
            TIMER_VOICE => {
                self.voice_timer = None;
                if self.state == TrMsState::Active {
                    if let (Some(call), Some(media)) = (self.call, self.remote_media) {
                        self.voice_seq = self.voice_seq.wrapping_add(1);
                        let now_us = ctx.now().as_micros();
                        let rtp = RtpPacket {
                            ssrc: 0x5452_0001, // "TR…"
                            seq: self.voice_seq,
                            timestamp: (now_us / 125) as u32,
                            payload_type: PAYLOAD_TYPE_GSM,
                            marker: self.voice_seq == 1,
                            payload_len: 33,
                            call,
                            origin_us: now_us,
                        };
                        self.send_ip(ctx, media, IpPayload::Rtp(rtp));
                        self.start_voice(ctx);
                    }
                }
            }
            _ => {}
        }
    }
}
