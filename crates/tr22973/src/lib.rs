//! # vgprs-tr22973 — the 3GPP baseline the paper argues against
//!
//! An implementation of the 3G TR 22.973-style "VoIP over GPRS"
//! architecture that the vGPRS paper compares itself to in Section 6:
//!
//! * the MS is itself an H.323 terminal with a vocoder ([`H323Ms`]),
//! * every byte — RAS, Q.931, RTP — crosses the *shared* packet radio
//!   channel (no circuit-switched air interface, no real-time guarantee),
//! * the PDP context is deactivated whenever the MS is idle and
//!   re-established per call (MS-initiated out, network-initiated via the
//!   GGSN's static-address PDU notification in),
//! * the subscriber's IMSI is handed to the H.323 domain at registration
//!   (`Gatekeeper::imsi_disclosures` counts the leak).
//!
//! Experiments C1–C4 run this baseline side-by-side with the vGPRS
//! system under identical network conditions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ms;
mod testbed;

pub use ms::{H323Ms, TrMsConfig, TrMsState};
pub use testbed::{TrZone, TrZoneConfig};
