//! An H.323 terminal: the full VoIP endpoint the paper's MSs do *not*
//! need to be (but the far ends of vGPRS calls, and every MS of the TR
//! 22.973 baseline, are).

use vgprs_sim::{Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{
    CallId, Cause, Command, Crv, IpPacket, IpPayload, Message, Msisdn, Q931Kind, Q931Message,
    RasMessage, RtpPacket, TransportAddr, PAYLOAD_TYPE_GSM,
};

/// Timer tag: auto-answer.
const TIMER_ANSWER: u64 = 1;
/// Timer tag: next RTP frame.
const TIMER_VOICE: u64 = 2;

/// Observable state of a terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminalState {
    /// Not yet confirmed by the gatekeeper.
    Registering,
    /// Registered, no call.
    Idle,
    /// Sent an originating ARQ, waiting for ACF.
    RequestingAdmission,
    /// Sent Setup, waiting for progress.
    Calling,
    /// Heard remote alerting.
    Ringback,
    /// Received Setup, requesting (answering) admission.
    AnsweringAdmission,
    /// Ringing locally.
    Ringing,
    /// Call up.
    Active,
}

/// Configuration for an [`H323Terminal`].
#[derive(Clone, Copy, Debug)]
pub struct TerminalConfig {
    /// Alias registered with the gatekeeper.
    pub alias: Msisdn,
    /// Call-signaling address (RAS uses the same IP).
    pub addr: TransportAddr,
    /// The gatekeeper's RAS address.
    pub gk: TransportAddr,
    /// Auto-answer delay; `None` waits for [`Command::Answer`].
    pub answer_after: Option<SimDuration>,
    /// Send RTP as soon as the call connects.
    pub talk_on_connect: bool,
}

impl TerminalConfig {
    /// A terminal that auto-answers after two seconds and talks.
    pub fn new(alias: Msisdn, addr: TransportAddr, gk: TransportAddr) -> Self {
        TerminalConfig {
            alias,
            addr,
            gk,
            answer_after: Some(SimDuration::from_secs(2)),
            talk_on_connect: true,
        }
    }
}

/// The terminal node.
#[derive(Debug)]
pub struct H323Terminal {
    config: TerminalConfig,
    router: NodeId,
    state: TerminalState,
    call: Option<CallId>,
    crv: Crv,
    next_crv: u16,
    pending_called: Option<Msisdn>,
    remote_signal: Option<TransportAddr>,
    remote_media: Option<TransportAddr>,
    connected_at: Option<SimTime>,
    dialed_at: Option<SimTime>,
    voice_timer: Option<TimerToken>,
    voice_seq: u16,
    ssrc: u32,
    /// RTP frames received.
    pub frames_received: u64,
    /// Calls that reached Active.
    pub calls_connected: u64,
    /// Calls that failed admission or were rejected.
    pub calls_failed: u64,
}

impl H323Terminal {
    /// Creates a terminal whose packets leave via `router`.
    pub fn new(config: TerminalConfig, router: NodeId) -> Self {
        H323Terminal {
            config,
            router,
            state: TerminalState::Registering,
            call: None,
            crv: Crv(0),
            next_crv: 0,
            pending_called: None,
            remote_signal: None,
            remote_media: None,
            connected_at: None,
            dialed_at: None,
            voice_timer: None,
            voice_seq: 0,
            ssrc: 0,
            frames_received: 0,
            calls_connected: 0,
            calls_failed: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TerminalState {
        self.state
    }

    /// The terminal's alias.
    pub fn alias(&self) -> Msisdn {
        self.config.alias
    }

    fn media_addr(&self) -> TransportAddr {
        TransportAddr::new(self.config.addr.ip, self.config.addr.port + 10_000)
    }

    fn send_ip(&self, ctx: &mut Context<'_, Message>, dst: TransportAddr, payload: IpPayload) {
        ctx.send(
            self.router,
            Message::Ip(IpPacket::new(self.config.addr, dst, payload)),
        );
    }

    fn send_ras(&self, ctx: &mut Context<'_, Message>, ras: RasMessage) {
        self.send_ip(ctx, self.config.gk, IpPayload::Ras(ras));
    }

    fn send_q931(&self, ctx: &mut Context<'_, Message>, kind: Q931Kind) {
        let (Some(call), Some(dst)) = (self.call, self.remote_signal) else {
            return;
        };
        self.send_ip(
            ctx,
            dst,
            IpPayload::Q931(Q931Message {
                crv: self.crv,
                call,
                kind,
            }),
        );
    }

    fn start_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if self.voice_timer.is_none() {
            self.voice_timer = Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
        }
    }

    fn stop_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(t) = self.voice_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn enter_active(&mut self, ctx: &mut Context<'_, Message>) {
        self.state = TerminalState::Active;
        self.calls_connected += 1;
        self.connected_at = Some(ctx.now());
        ctx.count("term.calls_connected");
        if let Some(at) = self.dialed_at.take() {
            ctx.observe_duration("term.call_setup_ms", ctx.now().duration_since(at));
        }
        if self.config.talk_on_connect {
            self.start_voice(ctx);
        }
    }

    fn end_call(&mut self, ctx: &mut Context<'_, Message>) {
        self.stop_voice(ctx);
        if let Some(call) = self.call.take() {
            let duration_ms = self
                .connected_at
                .take()
                .map(|at| ctx.now().duration_since(at).as_millis())
                .unwrap_or(0);
            // Paper step 3.3: both sides disengage.
            self.send_ras(ctx, RasMessage::Drq { call, duration_ms });
        }
        self.remote_signal = None;
        self.remote_media = None;
        self.pending_called = None;
        self.state = TerminalState::Idle;
    }

    fn answer(&mut self, ctx: &mut Context<'_, Message>) {
        if self.state == TerminalState::Ringing {
            self.send_q931(
                ctx,
                Q931Kind::Connect {
                    media_addr: self.media_addr(),
                },
            );
            self.enter_active(ctx);
        }
    }

    fn handle_command(&mut self, ctx: &mut Context<'_, Message>, cmd: Command) {
        match cmd {
            Command::Dial { call, called } => {
                if self.state != TerminalState::Idle {
                    ctx.count("term.dial_while_busy");
                    return;
                }
                self.state = TerminalState::RequestingAdmission;
                self.call = Some(call);
                self.pending_called = Some(called);
                self.dialed_at = Some(ctx.now());
                ctx.count("term.calls_dialed");
                self.send_ras(
                    ctx,
                    RasMessage::Arq {
                        call,
                        called,
                        answering: false,
                        bandwidth: 160,
                    },
                );
            }
            Command::Answer => self.answer(ctx),
            Command::Hangup
                if self.call.is_some() => {
                    self.send_q931(
                        ctx,
                        Q931Kind::ReleaseComplete {
                            cause: Cause::NormalClearing,
                        },
                    );
                    self.end_call(ctx);
                }
            Command::StartTalking
                if self.state == TerminalState::Active => {
                    self.start_voice(ctx);
                }
            Command::StopTalking => self.stop_voice(ctx),
            _ => {}
        }
    }

    fn handle_ras(&mut self, ctx: &mut Context<'_, Message>, ras: RasMessage) {
        match ras {
            RasMessage::Rcf { .. } => {
                if self.state == TerminalState::Registering {
                    self.state = TerminalState::Idle;
                    ctx.count("term.registered");
                }
            }
            RasMessage::Rrj { .. } => ctx.count("term.registration_rejected"),
            RasMessage::Acf {
                call,
                dest_call_signal_addr,
            } => {
                if self.call != Some(call) {
                    return;
                }
                match self.state {
                    TerminalState::RequestingAdmission => {
                        let Some(called) = self.pending_called else {
                            return;
                        };
                        self.next_crv += 1;
                        self.crv = Crv(self.next_crv);
                        self.remote_signal = Some(dest_call_signal_addr);
                        self.state = TerminalState::Calling;
                        self.send_q931(
                            ctx,
                            Q931Kind::Setup {
                                calling: Some(self.config.alias),
                                called,
                                signal_addr: self.config.addr,
                                media_addr: self.media_addr(),
                            },
                        );
                    }
                    TerminalState::AnsweringAdmission => {
                        // Paper step 2.6: ring and alert the caller.
                        self.state = TerminalState::Ringing;
                        ctx.count("term.ringing");
                        self.send_q931(ctx, Q931Kind::Alerting);
                        if let Some(delay) = self.config.answer_after {
                            ctx.set_timer(delay, TIMER_ANSWER);
                        }
                    }
                    _ => {}
                }
            }
            RasMessage::Arj { call, cause } => {
                if self.call != Some(call) {
                    return;
                }
                self.calls_failed += 1;
                ctx.count("term.admission_rejected");
                if self.state == TerminalState::AnsweringAdmission {
                    // Paper step 2.5: the call is released.
                    self.send_q931(ctx, Q931Kind::ReleaseComplete { cause });
                }
                self.stop_voice(ctx);
                self.call = None;
                self.pending_called = None;
                self.state = TerminalState::Idle;
            }
            RasMessage::Dcf { .. } => {}
            _ => ctx.count("term.unhandled_ras"),
        }
    }

    fn handle_q931(
        &mut self,
        ctx: &mut Context<'_, Message>,
        src: TransportAddr,
        msg: Q931Message,
    ) {
        match msg.kind {
            Q931Kind::Setup {
                calling: _,
                called,
                signal_addr,
                media_addr,
            } => {
                if self.state != TerminalState::Idle {
                    // Busy here.
                    self.send_ip(
                        ctx,
                        src,
                        IpPayload::Q931(Q931Message {
                            crv: msg.crv,
                            call: msg.call,
                            kind: Q931Kind::ReleaseComplete {
                                cause: Cause::UserBusy,
                            },
                        }),
                    );
                    return;
                }
                self.call = Some(msg.call);
                self.crv = msg.crv;
                self.remote_signal = Some(signal_addr);
                self.remote_media = Some(media_addr);
                // Paper step 2.4: Call Proceeding back to the caller.
                self.send_q931(ctx, Q931Kind::CallProceeding);
                // Paper step 2.5: the terminal asks its gatekeeper.
                self.state = TerminalState::AnsweringAdmission;
                self.send_ras(
                    ctx,
                    RasMessage::Arq {
                        call: msg.call,
                        called,
                        answering: true,
                        bandwidth: 160,
                    },
                );
            }
            Q931Kind::CallProceeding => ctx.count("term.call_proceeding"),
            Q931Kind::Alerting => {
                if self.state == TerminalState::Calling && self.call == Some(msg.call) {
                    self.state = TerminalState::Ringback;
                    if let Some(at) = self.dialed_at {
                        ctx.observe_duration(
                            "term.post_dial_delay_ms",
                            ctx.now().duration_since(at),
                        );
                    }
                }
            }
            Q931Kind::Connect { media_addr } => {
                if self.call == Some(msg.call)
                    && matches!(
                        self.state,
                        TerminalState::Calling | TerminalState::Ringback
                    )
                {
                    self.remote_media = Some(media_addr);
                    self.enter_active(ctx);
                }
            }
            Q931Kind::ReleaseComplete { .. } => {
                if self.call == Some(msg.call) {
                    ctx.count("term.released_by_peer");
                    self.end_call(ctx);
                }
            }
        }
    }
}

impl Node<Message> for H323Terminal {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(cmd)) => self.handle_command(ctx, cmd),
            (Interface::Lan | Interface::Gi, Message::Ip(packet)) => {
                if packet.dst.ip != self.config.addr.ip {
                    ctx.count("term.misdelivered");
                    return;
                }
                let src = packet.src;
                match packet.payload {
                    IpPayload::Ras(r) => self.handle_ras(ctx, r),
                    IpPayload::Q931(q) => self.handle_q931(ctx, src, q),
                    IpPayload::Rtp(rtp) => {
                        if self.call == Some(rtp.call) {
                            self.frames_received += 1;
                            ctx.count("term.rtp_received");
                            let delay = ctx.now().as_micros().saturating_sub(rtp.origin_us);
                            ctx.observe("term.voice_e2e_ms", delay as f64 / 1000.0);
                        }
                    }
                }
            }
            _ => ctx.count("term.unexpected_message"),
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        // Auto-register with the gatekeeper.
        self.send_ras(
            ctx,
            RasMessage::Rrq {
                alias: self.config.alias,
                transport: self.config.addr,
                imsi: None,
            },
        );
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: TimerToken, tag: u64) {
        match tag {
            TIMER_ANSWER => self.answer(ctx),
            TIMER_VOICE => {
                self.voice_timer = None;
                if self.state == TerminalState::Active {
                    if let (Some(call), Some(media)) = (self.call, self.remote_media) {
                        self.voice_seq = self.voice_seq.wrapping_add(1);
                        let now_us = ctx.now().as_micros();
                        let rtp = RtpPacket {
                            ssrc: self.ssrc,
                            seq: self.voice_seq,
                            timestamp: (now_us / 125) as u32,
                            payload_type: PAYLOAD_TYPE_GSM,
                            marker: self.voice_seq == 1,
                            payload_len: 33,
                            call,
                            origin_us: now_us,
                        };
                        ctx.count("term.rtp_sent");
                        self.send_ip(ctx, media, IpPayload::Rtp(rtp));
                        self.start_voice(ctx);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::{Gatekeeper, GatekeeperConfig};
    use vgprs_gprs::IpRouter;
    use vgprs_sim::Network;
    use vgprs_wire::Ipv4Addr;

    fn alias(n: &str) -> Msisdn {
        Msisdn::parse(n).unwrap()
    }

    fn addr(last: u8, port: u16) -> TransportAddr {
        TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, last), port)
    }

    /// Two terminals + gatekeeper + router: a complete H.323 zone.
    fn zone() -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(7);
        let router = net.add_node("router", IpRouter::new());
        let gk = net.add_node(
            "gk",
            Gatekeeper::new(
                GatekeeperConfig {
                    addr: addr(2, 1719),
                    bandwidth_budget: 10_000,
                    shed_utilization: 0.0,
                },
                router,
            ),
        );
        let t1 = net.add_node(
            "alice",
            H323Terminal::new(
                TerminalConfig::new(alias("88620001111"), addr(11, 1720), addr(2, 1719)),
                router,
            ),
        );
        let t2 = net.add_node(
            "bob",
            H323Terminal::new(
                TerminalConfig::new(alias("88620002222"), addr(12, 1720), addr(2, 1719)),
                router,
            ),
        );
        net.connect(gk, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(t1, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(t2, router, Interface::Lan, SimDuration::from_millis(1));
        {
            let r = net.node_mut::<IpRouter>(router).unwrap();
            r.add_host(addr(2, 0).ip, gk);
            r.add_host(addr(11, 0).ip, t1);
            r.add_host(addr(12, 0).ip, t2);
        }
        (net, gk, t1, t2)
    }

    #[test]
    fn terminals_register_on_start() {
        let (mut net, gk, t1, t2) = zone();
        net.run_until_quiescent();
        assert_eq!(net.node::<Gatekeeper>(gk).unwrap().registered_count(), 2);
        assert_eq!(net.node::<H323Terminal>(t1).unwrap().state(), TerminalState::Idle);
        assert_eq!(net.node::<H323Terminal>(t2).unwrap().state(), TerminalState::Idle);
    }

    #[test]
    fn full_call_between_terminals() {
        let (mut net, gk, t1, t2) = zone();
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            t1,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias("88620002222"),
            }),
        );
        net.run_until(vgprs_sim::SimTime::from_micros(10_000_000));
        let a = net.node::<H323Terminal>(t1).unwrap();
        let b = net.node::<H323Terminal>(t2).unwrap();
        assert_eq!(a.state(), TerminalState::Active);
        assert_eq!(b.state(), TerminalState::Active);
        assert!(a.frames_received > 100, "got {}", a.frames_received);
        assert!(b.frames_received > 100);
        // the signaling ladder matches the paper's step order
        assert!(net.trace().contains_subsequence(&[
            "RAS_ARQ",
            "RAS_ACF",
            "Q931_Setup",
            "Q931_Call_Proceeding",
            "RAS_ARQ",
            "RAS_ACF",
            "Q931_Alerting",
            "Q931_Connect",
        ]));
        let _ = gk;
    }

    #[test]
    fn hangup_disengages_both_sides() {
        let (mut net, gk, t1, _t2) = zone();
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            t1,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias("88620002222"),
            }),
        );
        net.run_until(vgprs_sim::SimTime::from_micros(5_000_000));
        net.inject(SimDuration::ZERO, t1, Message::Cmd(Command::Hangup));
        net.run_until_quiescent();
        let g = net.node::<Gatekeeper>(gk).unwrap();
        assert_eq!(g.charging_records().len(), 2, "both endpoints disengage");
        assert_eq!(g.bandwidth_used(), 0);
        assert!(net
            .trace()
            .contains_subsequence(&["Q931_Release_Complete", "RAS_DRQ", "RAS_DCF"]));
    }

    #[test]
    fn call_to_unknown_alias_fails() {
        let (mut net, _gk, t1, _t2) = zone();
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            t1,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias("99999999999"),
            }),
        );
        net.run_until_quiescent();
        let a = net.node::<H323Terminal>(t1).unwrap();
        assert_eq!(a.state(), TerminalState::Idle);
        assert_eq!(a.calls_failed, 1);
    }

    #[test]
    fn busy_terminal_rejects_second_setup() {
        let (mut net, _gk, t1, t2) = zone();
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            t1,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias("88620002222"),
            }),
        );
        net.run_until(vgprs_sim::SimTime::from_micros(5_000_000));
        // a third terminal calls bob
        let router = {
            // reuse the zone's router by adding a new terminal
            let r = net.node::<H323Terminal>(t1).unwrap().router;
            r
        };
        let t3 = net.add_node(
            "carol",
            H323Terminal::new(
                TerminalConfig::new(alias("88620003333"), addr(13, 1720), addr(2, 1719)),
                router,
            ),
        );
        net.connect(t3, router, Interface::Lan, SimDuration::from_millis(1));
        net.node_mut::<IpRouter>(router)
            .unwrap()
            .add_host(addr(13, 0).ip, t3);
        // alice↔bob stream RTP continuously, so the queue never drains;
        // bounded run instead of run_until_quiescent.
        net.run_until(vgprs_sim::SimTime::from_micros(6_000_000));
        net.inject(
            SimDuration::ZERO,
            t3,
            Message::Cmd(Command::Dial {
                call: CallId(2),
                called: alias("88620002222"),
            }),
        );
        net.run_until(vgprs_sim::SimTime::from_micros(8_000_000));
        let c = net.node::<H323Terminal>(t3).unwrap();
        assert_eq!(c.state(), TerminalState::Idle, "released by busy peer");
        let _ = t2;
    }
}
