//! The H.323/PSTN gateway.
//!
//! Bridges ISUP trunks to H.323 calls in both directions and transcodes
//! the bearer (circuit voice frames ↔ RTP). This is the element the
//! paper's Figure 8 routes through: the local telephone company hands the
//! call to the gateway, the gateway checks the gatekeeper, and a roamer
//! registered locally is reached with a *local* call. When the gatekeeper
//! does not know the dialed alias the gateway releases the trunk with
//! "no route", letting the originating switch fall back to the normal
//! international PSTN path.

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{
    CallId, Cause, Cic, Crv, IpPacket, IpPayload, IsupKind, IsupMessage, Message, Msisdn,
    Q931Kind, Q931Message, RasMessage, RtpPacket, TransportAddr, PAYLOAD_TYPE_GSM,
};

/// One bridged call.
#[derive(Debug)]
struct GwCall {
    /// ISUP leg: (switch node, circuit).
    trunk: Option<(NodeId, Cic)>,
    /// Remote H.323 signaling address.
    remote_signal: Option<TransportAddr>,
    /// Remote H.323 media address.
    remote_media: Option<TransportAddr>,
    crv: Crv,
    rtp_seq: u16,
}

/// Configuration for a [`PstnGateway`].
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// The gateway's H.225 transport address.
    pub addr: TransportAddr,
    /// The gatekeeper's RAS address.
    pub gk: TransportAddr,
}

/// The gateway node.
#[derive(Debug)]
pub struct PstnGateway {
    config: GatewayConfig,
    router: NodeId,
    switch: NodeId,
    calls: HashMap<CallId, GwCall>,
    /// Originating IAM details held while the gatekeeper answers.
    pending_called: HashMap<CallId, (Msisdn, Option<Msisdn>)>,
    next_crv: u16,
}

impl PstnGateway {
    /// Creates a gateway between `switch` (ISUP) and the H.323 zone
    /// reachable via `router`.
    pub fn new(config: GatewayConfig, router: NodeId, switch: NodeId) -> Self {
        PstnGateway {
            config,
            router,
            switch,
            calls: HashMap::new(),
            pending_called: HashMap::new(),
            next_crv: 0,
        }
    }

    /// Calls currently bridged.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    fn media_addr(&self) -> TransportAddr {
        TransportAddr::new(self.config.addr.ip, self.config.addr.port + 10_000)
    }

    fn send_ip(&self, ctx: &mut Context<'_, Message>, dst: TransportAddr, payload: IpPayload) {
        ctx.send(
            self.router,
            Message::Ip(IpPacket::new(self.config.addr, dst, payload)),
        );
    }

    fn send_q931(&self, ctx: &mut Context<'_, Message>, call: CallId, kind: Q931Kind) {
        let Some(gw_call) = self.calls.get(&call) else {
            return;
        };
        let Some(dst) = gw_call.remote_signal else {
            return;
        };
        self.send_ip(
            ctx,
            dst,
            IpPayload::Q931(Q931Message {
                crv: gw_call.crv,
                call,
                kind,
            }),
        );
    }

    fn send_isup(&self, ctx: &mut Context<'_, Message>, call: CallId, kind: IsupKind) {
        if let Some((switch, cic)) = self.calls.get(&call).and_then(|c| c.trunk) {
            ctx.send(switch, Message::Isup(IsupMessage { cic, call, kind }));
        }
    }

    fn drop_call(&mut self, call: CallId) {
        self.calls.remove(&call);
    }

    fn handle_isup(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: IsupMessage) {
        let IsupMessage { cic, call, kind } = msg;
        match kind {
            IsupKind::Iam { called, calling } => {
                // PSTN → H.323: ask the gatekeeper where the alias lives
                // (paper Figure 8, step (2)).
                self.next_crv += 1;
                self.calls.insert(
                    call,
                    GwCall {
                        trunk: Some((from, cic)),
                        remote_signal: None,
                        remote_media: None,
                        crv: Crv(self.next_crv),
                        rtp_seq: 0,
                    },
                );
                self.pending_called.insert(call, (called, calling));
                ctx.count("gw.pstn_calls_in");
                self.send_ip(
                    ctx,
                    self.config.gk,
                    IpPayload::Ras(RasMessage::Arq {
                        call,
                        called,
                        answering: false,
                        bandwidth: 160,
                    }),
                );
            }
            IsupKind::Acm => self.send_q931(ctx, call, Q931Kind::Alerting),
            IsupKind::Anm => {
                let media_addr = self.media_addr();
                self.send_q931(ctx, call, Q931Kind::Connect { media_addr });
            }
            IsupKind::Rel { cause } => {
                ctx.send(
                    from,
                    Message::Isup(IsupMessage {
                        cic,
                        call,
                        kind: IsupKind::Rlc,
                    }),
                );
                self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                self.disengage(ctx, call);
                self.drop_call(call);
            }
            IsupKind::Rlc => {}
        }
    }

    fn disengage(&self, ctx: &mut Context<'_, Message>, call: CallId) {
        if self.calls.contains_key(&call) {
            self.send_ip(
                ctx,
                self.config.gk,
                IpPayload::Ras(RasMessage::Drq {
                    call,
                    duration_ms: 0,
                }),
            );
        }
    }

    fn handle_ras(&mut self, ctx: &mut Context<'_, Message>, ras: RasMessage) {
        match ras {
            RasMessage::Acf {
                call,
                dest_call_signal_addr,
            } => {
                let Some((called, calling)) = self.pending_called.remove(&call) else {
                    return;
                };
                let media_addr = self.media_addr();
                let signal_addr = self.config.addr;
                let Some(gw_call) = self.calls.get_mut(&call) else {
                    return;
                };
                gw_call.remote_signal = Some(dest_call_signal_addr);
                ctx.count("gw.h323_setups_out");
                self.send_q931(
                    ctx,
                    call,
                    Q931Kind::Setup {
                        calling,
                        called,
                        signal_addr,
                        media_addr,
                    },
                );
            }
            RasMessage::Arj { call, .. } => {
                // Alias unknown to the local gatekeeper: fall back to the
                // normal PSTN (paper Figure 8's "otherwise" branch).
                self.pending_called.remove(&call);
                ctx.count("gw.fallback_to_pstn");
                self.send_isup(
                    ctx,
                    call,
                    IsupKind::Rel {
                        cause: Cause::NoRouteToDestination,
                    },
                );
                self.drop_call(call);
            }
            RasMessage::Dcf { .. } => {}
            _ => ctx.count("gw.unhandled_ras"),
        }
    }

    fn handle_q931(
        &mut self,
        ctx: &mut Context<'_, Message>,
        src: TransportAddr,
        msg: Q931Message,
    ) {
        match msg.kind {
            Q931Kind::Setup {
                called,
                calling,
                signal_addr,
                media_addr,
            } => {
                // H.323 → PSTN: seize a trunk into the switch.
                self.calls.insert(
                    msg.call,
                    GwCall {
                        trunk: Some((self.switch, Cic(50_000 + self.next_crv))),
                        remote_signal: Some(signal_addr),
                        remote_media: Some(media_addr),
                        crv: msg.crv,
                        rtp_seq: 0,
                    },
                );
                self.next_crv += 1;
                ctx.count("gw.h323_calls_in");
                self.send_q931(ctx, msg.call, Q931Kind::CallProceeding);
                self.send_isup(ctx, msg.call, IsupKind::Iam { called, calling });
            }
            Q931Kind::Alerting => {
                self.send_isup(ctx, msg.call, IsupKind::Acm);
            }
            Q931Kind::Connect { media_addr } => {
                if let Some(c) = self.calls.get_mut(&msg.call) {
                    c.remote_media = Some(media_addr);
                }
                self.send_isup(ctx, msg.call, IsupKind::Anm);
            }
            Q931Kind::CallProceeding => {}
            Q931Kind::ReleaseComplete { cause } => {
                self.send_isup(ctx, msg.call, IsupKind::Rel { cause });
                self.disengage(ctx, msg.call);
                self.drop_call(msg.call);
            }
        }
        let _ = src;
    }
}

impl Node<Message> for PstnGateway {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Isup, Message::Isup(m)) => self.handle_isup(ctx, from, m),
            (
                Interface::Isup,
                Message::TrunkVoice {
                    call,
                    seq,
                    origin_us,
                    ..
                },
            ) => {
                // Circuit → RTP.
                let Some(gw_call) = self.calls.get_mut(&call) else {
                    return;
                };
                let Some(media) = gw_call.remote_media else {
                    return;
                };
                gw_call.rtp_seq = gw_call.rtp_seq.wrapping_add(1);
                let rtp = RtpPacket {
                    ssrc: 0x4757_4159 // "GWAY"
                        ,
                    seq: gw_call.rtp_seq,
                    timestamp: (origin_us / 125) as u32,
                    payload_type: PAYLOAD_TYPE_GSM,
                    marker: seq == 1,
                    payload_len: 33,
                    call,
                    origin_us,
                };
                let addr = self.config.addr;
                ctx.send(
                    self.router,
                    Message::Ip(IpPacket::new(addr, media, IpPayload::Rtp(rtp))),
                );
            }
            (Interface::Lan | Interface::Gi, Message::Ip(packet)) => {
                if packet.dst.ip != self.config.addr.ip {
                    ctx.count("gw.misdelivered");
                    return;
                }
                let src = packet.src;
                match packet.payload {
                    IpPayload::Ras(r) => self.handle_ras(ctx, r),
                    IpPayload::Q931(q) => self.handle_q931(ctx, src, q),
                    IpPayload::Rtp(rtp) => {
                        // RTP → circuit.
                        let cic = self
                            .calls
                            .get(&rtp.call)
                            .and_then(|c| c.trunk)
                            .map(|(_, cic)| cic)
                            .unwrap_or(Cic(0));
                        ctx.send(
                            self.switch,
                            Message::TrunkVoice {
                                cic,
                                call: rtp.call,
                                seq: rtp.seq as u32,
                                origin_us: rtp.origin_us,
                            },
                        );
                    }
                }
            }
            _ => ctx.count("gw.unexpected_message"),
        }
    }
}
