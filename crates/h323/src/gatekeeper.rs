//! The H.323 gatekeeper.
//!
//! A *standard* gatekeeper, exactly as the paper requires: address
//! translation (alias → call-signaling transport address), admission
//! control with a bandwidth budget, disengage handling with per-call
//! charging records (paper step 3.3). It holds **no** GSM state and never
//! sees an IMSI — that is the confidentiality property Section 6 argues
//! vGPRS preserves and the TR 22.973 baseline violates.

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId, SimTime};
use vgprs_wire::{
    CallId, Cause, Command, IpPacket, IpPayload, Message, Msisdn, RasMessage, TransportAddr,
};

/// One completed call's charging record (paper step 3.3: "the GK records
/// the call statistics for charging").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChargingRecord {
    /// The call.
    pub call: CallId,
    /// When the disengage arrived.
    pub ended_at: SimTime,
    /// Duration reported in the DRQ.
    pub duration_ms: u64,
}

/// Configuration for a [`Gatekeeper`].
#[derive(Clone, Copy, Debug)]
pub struct GatekeeperConfig {
    /// The gatekeeper's RAS transport address.
    pub addr: TransportAddr,
    /// Total admissible bandwidth in units of 100 bit/s (H.225
    /// convention). 16 kbit/s per GSM voice call ⇒ 160 units per call.
    pub bandwidth_budget: u32,
    /// Overload control: new admissions that would push bandwidth
    /// utilization above this fraction of the budget are shed with an
    /// ARJ carrying a *congestion* cause — retryable through the VMSC's
    /// bounded ARQ backoff, unlike a hard budget rejection. `0.0`
    /// disables shedding (the historical behavior).
    pub shed_utilization: f64,
}

/// The gatekeeper node.
#[derive(Debug)]
pub struct Gatekeeper {
    config: GatekeeperConfig,
    /// Next hop for every outgoing IP packet (the zone's LAN router).
    router: NodeId,
    /// The address-translation table of paper step 1.5.
    table: HashMap<Msisdn, TransportAddr>,
    /// Outstanding admissions: (call, requester) → bandwidth.
    admissions: HashMap<(CallId, TransportAddr), u32>,
    bandwidth_used: u32,
    charging: Vec<ChargingRecord>,
    /// IMSIs the H.323 domain has been handed (TR 22.973 mode only). A
    /// standard vGPRS deployment keeps this empty — experiment C4's
    /// confidentiality measurement.
    imsi_directory: HashMap<Msisdn, vgprs_wire::Imsi>,
    /// Fault injection: while true (crashed or blackholed) the node
    /// silently drops every protocol message.
    down: bool,
}

impl Gatekeeper {
    /// Creates a gatekeeper whose packets leave via `router`.
    pub fn new(config: GatekeeperConfig, router: NodeId) -> Self {
        Gatekeeper {
            config,
            router,
            table: HashMap::new(),
            admissions: HashMap::new(),
            bandwidth_used: 0,
            charging: Vec::new(),
            imsi_directory: HashMap::new(),
            down: false,
        }
    }

    /// Registered aliases.
    pub fn registered_count(&self) -> usize {
        self.table.len()
    }

    /// The transport address registered for `alias`, if any.
    pub fn lookup(&self, alias: &Msisdn) -> Option<TransportAddr> {
        self.table.get(alias).copied()
    }

    /// Bandwidth units currently admitted.
    pub fn bandwidth_used(&self) -> u32 {
        self.bandwidth_used
    }

    /// Completed-call charging records.
    pub fn charging_records(&self) -> &[ChargingRecord] {
        &self.charging
    }

    /// How many subscriber IMSIs have leaked into the H.323 domain
    /// (paper Section 6: zero for vGPRS, one per subscriber for the TR
    /// 22.973 baseline).
    pub fn imsi_disclosures(&self) -> usize {
        self.imsi_directory.len()
    }

    fn reply(&self, ctx: &mut Context<'_, Message>, to: TransportAddr, ras: RasMessage) {
        let packet = IpPacket::new(self.config.addr, to, IpPayload::Ras(ras));
        ctx.send(self.router, Message::Ip(packet));
    }

    fn handle_ras(&mut self, ctx: &mut Context<'_, Message>, src: TransportAddr, ras: RasMessage) {
        match ras {
            RasMessage::Rrq {
                alias,
                transport,
                imsi,
            } => {
                // Paper step 1.5: create the (IP address, MSISDN) entry.
                self.table.insert(alias, transport);
                if let Some(imsi) = imsi {
                    // TR 22.973 mode: the gatekeeper is handed the
                    // confidential IMSI (paper Section 6's objection).
                    self.imsi_directory.insert(alias, imsi);
                    ctx.count("gk.imsi_disclosures");
                }
                ctx.count("gk.registrations");
                self.reply(ctx, src, RasMessage::Rcf { alias });
            }
            RasMessage::Urq { alias } => {
                self.table.remove(&alias);
                ctx.count("gk.unregistrations");
                self.reply(ctx, src, RasMessage::Ucf { alias });
            }
            RasMessage::Arq {
                call,
                called,
                answering,
                bandwidth,
            } => {
                // Overload control: load-shed new admissions once
                // utilization crosses the threshold. The congestion
                // cause tells the VMSC's ARQ ladder to retry with
                // backoff rather than release. Answering ARQs are
                // exempt — the far end already committed the call, and
                // rejecting the answer would waste the admitted leg.
                if self.config.shed_utilization > 0.0 && !answering {
                    let projected = (self.bandwidth_used + bandwidth) as f64
                        / self.config.bandwidth_budget.max(1) as f64;
                    if projected > self.config.shed_utilization {
                        ctx.count("gk.admission_shed");
                        self.reply(
                            ctx,
                            src,
                            RasMessage::Arj {
                                call,
                                cause: Cause::NetworkCongestion,
                            },
                        );
                        return;
                    }
                }
                if self.bandwidth_used + bandwidth > self.config.bandwidth_budget {
                    ctx.count("gk.admission_rejected_bandwidth");
                    self.reply(
                        ctx,
                        src,
                        RasMessage::Arj {
                            call,
                            cause: Cause::AdmissionRejected,
                        },
                    );
                    return;
                }
                let dest = if answering {
                    // The answering endpoint already holds the call; the
                    // ACF just confirms admission (paper steps 2.5, 4.3).
                    Some(src)
                } else {
                    self.table.get(&called).copied()
                };
                match dest {
                    Some(dest_call_signal_addr) => {
                        self.admissions.insert((call, src), bandwidth);
                        self.bandwidth_used += bandwidth;
                        ctx.count("gk.admissions");
                        self.reply(
                            ctx,
                            src,
                            RasMessage::Acf {
                                call,
                                dest_call_signal_addr,
                            },
                        );
                    }
                    None => {
                        ctx.count("gk.admission_rejected_unknown_alias");
                        self.reply(
                            ctx,
                            src,
                            RasMessage::Arj {
                                call,
                                cause: Cause::UnallocatedNumber,
                            },
                        );
                    }
                }
            }
            RasMessage::Drq { call, duration_ms } => {
                if let Some(bw) = self.admissions.remove(&(call, src)) {
                    self.bandwidth_used = self.bandwidth_used.saturating_sub(bw);
                }
                self.charging.push(ChargingRecord {
                    call,
                    ended_at: ctx.now(),
                    duration_ms,
                });
                ctx.count("gk.disengages");
                self.reply(ctx, src, RasMessage::Dcf { call });
            }
            _ => ctx.count("gk.unhandled_ras"),
        }
    }
}

impl Node<Message> for Gatekeeper {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(Command::Crash)) => {
                // Registrations and admissions are volatile; charging
                // records model persisted billing and survive.
                self.table.clear();
                self.admissions.clear();
                self.bandwidth_used = 0;
                self.down = true;
                ctx.count("gk.crashes");
            }
            (Interface::Internal, Message::Cmd(Command::Blackhole)) => {
                self.down = true;
                ctx.count("gk.blackholes");
            }
            (Interface::Internal, Message::Cmd(Command::Restore)) => {
                self.down = false;
            }
            _ if self.down => ctx.count("gk.dropped_while_down"),
            (Interface::Lan | Interface::Gi, Message::Ip(packet)) => {
                if packet.dst.ip != self.config.addr.ip {
                    ctx.count("gk.misdelivered");
                    return;
                }
                match packet.payload {
                    IpPayload::Ras(ras) => self.handle_ras(ctx, packet.src, ras),
                    _ => ctx.count("gk.non_ras_payload"),
                }
            }
            _ => ctx.count("gk.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};

    fn alias(n: &str) -> Msisdn {
        Msisdn::parse(n).unwrap()
    }

    fn addr(last: u8, port: u16) -> TransportAddr {
        TransportAddr::new(vgprs_wire::Ipv4Addr::from_octets(10, 0, 0, last), port)
    }

    fn gk_addr() -> TransportAddr {
        addr(2, 1719)
    }

    /// An IP host that sends RAS messages to the GK and records replies.
    struct Host {
        router: NodeId,
        own: TransportAddr,
        send: Vec<RasMessage>,
        got: Vec<RasMessage>,
    }
    impl Node<Message> for Host {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (i, _) in self.send.iter().enumerate() {
                ctx.set_timer(SimDuration::from_millis(20 * i as u64), i as u64);
            }
        }
        fn on_timer(
            &mut self,
            ctx: &mut Context<'_, Message>,
            _t: vgprs_sim::TimerToken,
            tag: u64,
        ) {
            let ras = self.send[tag as usize].clone();
            ctx.send(
                self.router,
                Message::Ip(IpPacket::new(self.own, gk_addr(), IpPayload::Ras(ras))),
            );
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            if let Message::Ip(IpPacket {
                payload: IpPayload::Ras(r),
                ..
            }) = m
            {
                self.got.push(r);
            }
        }
    }

    /// A two-port "router" that knows the GK and one host.
    struct MiniRouter {
        gk_node: Option<NodeId>,
        host_node: Option<NodeId>,
        gk_ip: vgprs_wire::Ipv4Addr,
    }
    impl Node<Message> for MiniRouter {
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            if let Message::Ip(ref p) = m {
                let hop = if p.dst.ip == self.gk_ip {
                    self.gk_node
                } else {
                    self.host_node
                };
                if let Some(h) = hop {
                    ctx.send(h, m);
                }
            }
        }
    }

    fn rig(send: Vec<RasMessage>) -> (Network<Message>, NodeId, NodeId) {
        let mut net = Network::new(1);
        let router = net.add_node(
            "router",
            MiniRouter {
                gk_node: None,
                host_node: None,
                gk_ip: gk_addr().ip,
            },
        );
        let gk = net.add_node(
            "gk",
            Gatekeeper::new(
                GatekeeperConfig {
                    addr: gk_addr(),
                    bandwidth_budget: 480, // three 160-unit calls
                    shed_utilization: 0.0,
                },
                router,
            ),
        );
        let host = net.add_node(
            "host",
            Host {
                router,
                own: addr(9, 1720),
                send,
                got: Vec::new(),
            },
        );
        net.connect(gk, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(host, router, Interface::Lan, SimDuration::from_millis(1));
        {
            let r = net.node_mut::<MiniRouter>(router).unwrap();
            r.gk_node = Some(gk);
            r.host_node = Some(host);
        }
        (net, gk, host)
    }

    #[test]
    fn rrq_registers_and_confirms() {
        let (mut net, gk, host) = rig(vec![RasMessage::Rrq {
            alias: alias("88691234567"),
            transport: addr(9, 1720),
            imsi: None,
        }]);
        net.run_until_quiescent();
        let g = net.node::<Gatekeeper>(gk).unwrap();
        assert_eq!(g.registered_count(), 1);
        assert_eq!(g.lookup(&alias("88691234567")), Some(addr(9, 1720)));
        assert!(matches!(
            net.node::<Host>(host).unwrap().got[0],
            RasMessage::Rcf { .. }
        ));
    }

    #[test]
    fn urq_unregisters() {
        let (mut net, gk, _host) = rig(vec![
            RasMessage::Rrq {
                alias: alias("88691234567"),
                transport: addr(9, 1720),
                imsi: None,
            },
            RasMessage::Urq {
                alias: alias("88691234567"),
            },
        ]);
        net.run_until_quiescent();
        assert_eq!(net.node::<Gatekeeper>(gk).unwrap().registered_count(), 0);
    }

    #[test]
    fn arq_translates_alias() {
        let (mut net, _gk, host) = rig(vec![
            RasMessage::Rrq {
                alias: alias("88691234567"),
                transport: addr(7, 1720),
                imsi: None,
            },
            RasMessage::Arq {
                call: CallId(5),
                called: alias("88691234567"),
                answering: false,
                bandwidth: 160,
            },
        ]);
        net.run_until_quiescent();
        let got = &net.node::<Host>(host).unwrap().got;
        match got[1] {
            RasMessage::Acf {
                call,
                dest_call_signal_addr,
            } => {
                assert_eq!(call, CallId(5));
                assert_eq!(dest_call_signal_addr, addr(7, 1720));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arq_unknown_alias_rejected() {
        let (mut net, _gk, host) = rig(vec![RasMessage::Arq {
            call: CallId(5),
            called: alias("99999999999"),
            answering: false,
            bandwidth: 160,
        }]);
        net.run_until_quiescent();
        assert!(matches!(
            net.node::<Host>(host).unwrap().got[0],
            RasMessage::Arj {
                cause: Cause::UnallocatedNumber,
                ..
            }
        ));
    }

    #[test]
    fn bandwidth_budget_enforced_and_freed() {
        let mk_arq = |id: u64| RasMessage::Arq {
            call: CallId(id),
            called: alias("88691234567"),
            answering: false,
            bandwidth: 160,
        };
        let (mut net, gk, host) = rig(vec![
            RasMessage::Rrq {
                alias: alias("88691234567"),
                transport: addr(7, 1720),
                imsi: None,
            },
            mk_arq(1),
            mk_arq(2),
            mk_arq(3),
            mk_arq(4), // over budget (480/160 = 3)
            RasMessage::Drq {
                call: CallId(1),
                duration_ms: 30_000,
            },
            mk_arq(5), // fits again
        ]);
        net.run_until_quiescent();
        let got = &net.node::<Host>(host).unwrap().got;
        let labels: Vec<&str> = got.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "RAS_RCF", "RAS_ACF", "RAS_ACF", "RAS_ACF", "RAS_ARJ", "RAS_DCF", "RAS_ACF"
            ]
        );
        let g = net.node::<Gatekeeper>(gk).unwrap();
        assert_eq!(g.bandwidth_used(), 480);
        assert_eq!(g.charging_records().len(), 1);
        assert_eq!(g.charging_records()[0].duration_ms, 30_000);
    }

    #[test]
    fn answering_arq_confirms_without_lookup() {
        let (mut net, _gk, host) = rig(vec![RasMessage::Arq {
            call: CallId(5),
            called: alias("99999999999"), // unknown — irrelevant when answering
            answering: true,
            bandwidth: 160,
        }]);
        net.run_until_quiescent();
        assert!(matches!(
            net.node::<Host>(host).unwrap().got[0],
            RasMessage::Acf { .. }
        ));
    }

    #[test]
    fn roamer_reregistration_overwrites() {
        let (mut net, gk, _host) = rig(vec![
            RasMessage::Rrq {
                alias: alias("447700900123"),
                transport: addr(7, 1720),
                imsi: None,
            },
            // the roamer moved: a new VMSC registers the same alias
            RasMessage::Rrq {
                alias: alias("447700900123"),
                transport: addr(8, 1720),
                imsi: None,
            },
        ]);
        net.run_until_quiescent();
        let g = net.node::<Gatekeeper>(gk).unwrap();
        assert_eq!(g.registered_count(), 1);
        assert_eq!(g.lookup(&alias("447700900123")), Some(addr(8, 1720)));
    }
}
