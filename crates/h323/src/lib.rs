//! # vgprs-h323 — the H.323 VoIP substrate
//!
//! The standard H.323 network elements of the paper's Figure 2(b):
//!
//! * [`Gatekeeper`] — address translation, admission control with a
//!   bandwidth budget, disengage/charging. Deliberately GSM-ignorant: it
//!   never sees an IMSI (the confidentiality property of Section 6).
//! * [`H323Terminal`] — a complete VoIP endpoint (RAS registration,
//!   Q.931 fast-connect call control, RTP media).
//! * [`PstnGateway`] — ISUP ↔ H.323 bridging with bearer transcoding and
//!   PSTN fallback when the gatekeeper does not know the dialed alias
//!   (the Figure 8 "otherwise" branch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gatekeeper;
mod gateway;
mod terminal;

pub use gatekeeper::{ChargingRecord, Gatekeeper, GatekeeperConfig};
pub use gateway::{GatewayConfig, PstnGateway};
pub use terminal::{H323Terminal, TerminalConfig, TerminalState};
