//! Golden-file schema test for [`LoadReport::to_json`].
//!
//! The committed `tests/golden/load_report.json` is the dump of one
//! small fixed-seed run. The test re-runs that configuration, parses
//! both documents with the in-tree JSON parser and compares them
//! field-by-field: every dotted path must exist on both sides and every
//! deterministic value must match exactly. Only the two wall-clock
//! figures (`wall_secs`, `events_per_sec`) are value-exempt — their
//! *presence* is still required.
//!
//! This pins the artifact contract that `harness diff`, the committed
//! baselines and any downstream tooling parse: an accidental rename,
//! dropped field or changed numeric rendering fails here first, with
//! the offending path in the message.
//!
//! After an *intentional* schema or KPI change, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p vgprs-load --test golden` and commit
//! the refreshed file alongside the change.

use vgprs_load::{run_load, CallMix, LoadConfig, PopulationConfig};
use vgprs_sim::JsonValue;

/// Paths whose values legitimately differ between runs. Everything else
/// in the dump is a pure function of this configuration.
fn value_exempt(path: &str) -> bool {
    path == "wall_secs" || path == "events_per_sec"
}

fn golden_cfg() -> LoadConfig {
    LoadConfig {
        subscribers: 48,
        shards: 2,
        threads: 1,
        seed: 42,
        snapshot_secs: 30,
        population: PopulationConfig {
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 15.0,
            window_secs: 60,
            mix: CallMix {
                mo: 0.4,
                mt: 0.4,
                m2m: 0.2,
            },
            mobility_fraction: 0.15,
            ..PopulationConfig::default()
        },
        ..LoadConfig::default()
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("load_report.json")
}

#[test]
fn report_json_matches_the_committed_golden_file() {
    let fresh_text = run_load(&golden_cfg()).to_json();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, &fresh_text).expect("write golden file");
        eprintln!("golden file regenerated: {}", path.display());
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden = JsonValue::parse(&golden_text).expect("golden file parses");
    let fresh = JsonValue::parse(&fresh_text).expect("fresh report parses");

    let flat_golden = golden.flatten();
    let flat_fresh = fresh.flatten();
    let fresh_map: std::collections::HashMap<&str, &JsonValue> = flat_fresh
        .iter()
        .map(|(p, v)| (p.as_str(), *v))
        .collect();
    let golden_map: std::collections::HashMap<&str, &JsonValue> = flat_golden
        .iter()
        .map(|(p, v)| (p.as_str(), *v))
        .collect();

    let mut problems = Vec::new();
    for (p, golden_value) in &flat_golden {
        match fresh_map.get(p.as_str()) {
            None => problems.push(format!("missing from fresh report: {p}")),
            Some(fresh_value) if !value_exempt(p) && *fresh_value != *golden_value => {
                problems.push(format!(
                    "value changed at {p}: golden {golden_value:?} != fresh {fresh_value:?}"
                ));
            }
            Some(_) => {}
        }
    }
    for (p, _) in &flat_fresh {
        if !golden_map.contains_key(p.as_str()) {
            problems.push(format!("new path not in golden file: {p}"));
        }
    }
    assert!(
        problems.is_empty(),
        "report JSON drifted from the golden schema ({} problem(s); regenerate \
         with UPDATE_GOLDEN=1 only if the change is intentional):\n  {}",
        problems.len(),
        problems.join("\n  ")
    );
}

/// The golden configuration must exercise the interesting parts of the
/// schema — a vacuous golden file (no snapshots, no calls) would pin
/// nothing.
#[test]
fn golden_run_is_not_vacuous() {
    let r = run_load(&golden_cfg());
    assert!(r.attempts() > 0, "golden run produced no call attempts");
    assert!(
        r.snapshots.len() >= 2,
        "golden run produced {} snapshot frame(s); the schema's frames \
         array needs at least 2",
        r.snapshots.len()
    );
    assert!(r.voice_delay().count() > 0, "golden run carried no voice");
}
