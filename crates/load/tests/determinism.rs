//! The load engine's central promise: results are a function of the
//! configuration and the master seed, never of the machine.

use vgprs_load::{
    partition, run_load, subscriber_plan, subscriber_plan_demand, CallMix, DemandPlan,
    FaultPlanConfig, LoadConfig, OverloadControls, PopulationConfig, ScenarioConfig,
    TrunkFaultClass, TrunkPlanConfig,
};
use vgprs_sim::Kernel;

fn small_cfg(threads: usize) -> LoadConfig {
    LoadConfig {
        subscribers: 96,
        shards: 4,
        threads,
        seed: 0xD15EA5E,
        population: PopulationConfig {
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 20.0,
            window_secs: 90,
            mix: CallMix {
                mo: 0.4,
                mt: 0.4,
                m2m: 0.2,
            },
            mobility_fraction: 0.15,
            ..PopulationConfig::default()
        },
        ..LoadConfig::default()
    }
}

/// Same master seed, 1 vs 2 vs 8 worker threads: the merged KPI report
/// and its fingerprint are bit-identical.
#[test]
fn thread_count_does_not_change_results() {
    let base = run_load(&small_cfg(1));
    for threads in [2, 8] {
        let other = run_load(&small_cfg(threads));
        assert_eq!(
            base.render_deterministic(),
            other.render_deterministic(),
            "KPI text diverged between 1 and {threads} threads"
        );
        assert_eq!(
            base.fingerprint(),
            other.fingerprint(),
            "fingerprint diverged between 1 and {threads} threads"
        );
    }
}

/// Same configuration twice: identical down to the fingerprint.
#[test]
fn reruns_are_identical() {
    let a = run_load(&small_cfg(2));
    let b = run_load(&small_cfg(2));
    assert_eq!(a.render_deterministic(), b.render_deterministic());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// A different master seed must actually change something.
#[test]
fn seed_changes_results() {
    let a = run_load(&small_cfg(2));
    let mut cfg = small_cfg(2);
    cfg.seed ^= 1;
    let b = run_load(&cfg);
    assert_ne!(a.fingerprint(), b.fingerprint(), "seed had no effect");
}

/// A subscriber's arrival stream depends on its global index only:
/// partitioning the same population into 2 or 4 shards hands every
/// subscriber exactly the same plan.
#[test]
fn shard_count_does_not_change_subscriber_plans() {
    let pop = PopulationConfig {
        calls_per_sub_hour: 25.0,
        window_secs: 300,
        mobility_fraction: 0.3,
        ..PopulationConfig::default()
    };
    let seed = 99;
    let subscribers = 64;
    let collect = |shards: usize| {
        let mut plans = Vec::new();
        for (base, size) in partition(subscribers, shards) {
            for i in 0..size {
                plans.push(subscriber_plan(&pop, seed, base + i));
            }
        }
        plans
    };
    let two = collect(2);
    let four = collect(4);
    assert_eq!(two.len(), four.len());
    for (a, b) in two.iter().zip(&four) {
        assert_eq!(a.global_index, b.global_index);
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!((x.at_ms, x.kind, x.hold_ms, x.peer_draw),
                       (y.at_ms, y.kind, y.hold_ms, y.peer_draw));
        }
        assert_eq!(
            a.excursion.map(|e| (e.out_ms, e.back_ms)),
            b.excursion.map(|e| (e.out_ms, e.back_ms)),
        );
    }
}

/// A population with cross-shard excursions enabled: subscribers leave
/// their home shard mid-call (inter-VMSC handoff over the mailbox) and
/// while idle (HLR ownership transfer).
fn cross_cfg(threads: usize, shards: usize) -> LoadConfig {
    LoadConfig {
        subscribers: 96,
        shards,
        threads,
        seed: 0xD15EA5E,
        population: PopulationConfig {
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 25.0,
            window_secs: 90,
            mix: CallMix {
                mo: 0.4,
                mt: 0.4,
                m2m: 0.2,
            },
            mobility_fraction: 0.15,
            cross_shard_fraction: 0.35,
            ..PopulationConfig::default()
        },
        ..LoadConfig::default()
    }
}

/// The tentpole property: with inter-shard traffic flowing — handoff
/// MAP dialogues, rerouted trunk voice, HLR relocations — the merged
/// report is still bit-identical for every worker-thread count, at
/// more than one shard count.
#[test]
fn cross_shard_results_are_thread_invariant() {
    for shards in [4, 16] {
        let base = run_load(&cross_cfg(1, shards));
        for threads in [2, 8] {
            let other = run_load(&cross_cfg(threads, shards));
            assert_eq!(
                base.render_deterministic(),
                other.render_deterministic(),
                "KPI text diverged between 1 and {threads} threads at {shards} shards"
            );
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "fingerprint diverged between 1 and {threads} threads at {shards} shards"
            );
        }
    }
}

/// The cross-shard machinery must actually fire: the run above is only
/// meaningful if the mailbox carried real handoffs and HLR moves.
#[test]
fn cross_shard_traffic_actually_flows() {
    let r = run_load(&cross_cfg(2, 4));
    assert!(
        r.handoff_attempts() > 0,
        "no inter-VMSC handoffs attempted:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.handoff_successes() > 0,
        "no handoff completed the Figure 9 ladder:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.handoff_interruption().count() > 0,
        "no interruption-time samples (downlink never resumed):\n{}",
        r.render_deterministic()
    );
    assert!(
        r.hlr_relocations() > 0,
        "no idle-mode HLR ownership moves:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.stats.counter("load.visitors_hosted") > 0,
        "no shard ever hosted a visitor:\n{}",
        r.render_deterministic()
    );
}

/// Rerunning a cross-shard configuration reproduces it exactly.
#[test]
fn cross_shard_reruns_are_identical() {
    let a = run_load(&cross_cfg(2, 4));
    let b = run_load(&cross_cfg(2, 4));
    assert_eq!(a.render_deterministic(), b.render_deterministic());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

fn chaos_cfg(threads: usize) -> LoadConfig {
    LoadConfig {
        faults: FaultPlanConfig::all(1.0),
        ..small_cfg(threads)
    }
}

/// Fault injection rides the same deterministic rails as everything
/// else: a fixed fault plan produces bit-identical reports at every
/// worker-thread count, on both event kernels.
#[test]
fn faulted_runs_are_thread_and_kernel_invariant() {
    let base = run_load(&chaos_cfg(1));
    for threads in [2, 8] {
        for kernel in [vgprs_sim::Kernel::Wheel, vgprs_sim::Kernel::Heap] {
            let other = run_load(&LoadConfig {
                kernel,
                ..chaos_cfg(threads)
            });
            assert_eq!(
                base.render_deterministic(),
                other.render_deterministic(),
                "faulted KPI text diverged at {threads} threads on {kernel:?}"
            );
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "faulted fingerprint diverged at {threads} threads on {kernel:?}"
            );
        }
    }
}

/// A zero-intensity fault config compiles to an empty plan, which must
/// leave the run byte-identical to one that never heard of faults.
#[test]
fn zero_intensity_faults_change_nothing() {
    let plain = run_load(&small_cfg(2));
    let zero = run_load(&LoadConfig {
        faults: FaultPlanConfig::all(0.0),
        ..small_cfg(2)
    });
    assert_eq!(plain.render_deterministic(), zero.render_deterministic());
    assert_eq!(plain.fingerprint(), zero.fingerprint());
}

/// The chaos configuration must actually hurt — and the recovery
/// machinery must actually recover.
#[test]
fn faults_bite_and_recovery_runs() {
    let r = run_load(&chaos_cfg(2));
    assert!(
        r.faults_injected() > 0,
        "no impairment windows opened:\n{}",
        r.render_deterministic()
    );
    let (ras_retries, arq_retries) = r.guard_retries();
    let dropped = r.dropped_by_class(vgprs_load::FaultClass::LinkDegrade)
        + r.dropped_by_class(vgprs_load::FaultClass::NodeCrash)
        + r.dropped_by_class(vgprs_load::FaultClass::Blackhole);
    assert!(
        dropped > 0 || ras_retries + arq_retries > 0,
        "faults were injected but nothing dropped or retried:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.redial_attempts() > 0,
        "no caller ever redialed:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.recovery_time().count() > 0,
        "recovery-time histogram is empty:\n{}",
        r.render_deterministic()
    );
}

/// The busy hour must exercise every KPI the report advertises.
#[test]
fn kpis_are_populated() {
    let r = run_load(&small_cfg(2));
    assert_eq!(r.stats.counter("load.registered"), 96);
    assert!(r.attempts() > 0, "no call attempts generated");
    assert!(r.stats.counter("ms.calls_connected") > 0, "no calls connected");
    assert!(r.setup_delay().count() > 0, "no setup-delay samples");
    assert!(r.paging_delay().count() > 0, "no paging samples (MT mix is 40%)");
    assert!(r.pdp_activation().count() > 0, "no voice-PDP samples");
    assert!(r.voice_delay().count() > 0, "no RTP samples");
    let mos = r.mos();
    assert!((1.0..=4.6).contains(&mos), "implausible MOS {mos}");
    assert!(r.stats.counter("load.moves") > 0, "mobility never fired");
    assert!(r.events > 0 && r.sim_secs > 0.0);
}

// ---- demand plans and overload controls ----

fn surge_cfg(threads: usize) -> LoadConfig {
    LoadConfig {
        threads,
        scenario: ScenarioConfig::flash(10.0),
        controls: OverloadControls {
            paging_rate_per_s: 2,
            gk_shed_utilization: 0.5,
            pdp_rate_per_s: 2,
        },
        gk_bandwidth: 1_280,
        ..small_cfg(threads)
    }
}

/// A flash-crowd run with every overload control active is still a pure
/// function of the configuration: thread count and timer kernel must
/// not move a single bit of the report.
#[test]
fn surged_runs_are_thread_and_kernel_invariant() {
    let base = run_load(&surge_cfg(1));
    assert!(
        base.attempts_peak() > 0,
        "the shock never produced peak attempts:\n{}",
        base.render_deterministic()
    );
    for threads in [2, 8] {
        for kernel in [Kernel::Heap, Kernel::Wheel] {
            let other = run_load(&LoadConfig {
                kernel,
                ..surge_cfg(threads)
            });
            assert_eq!(
                base.render_deterministic(),
                other.render_deterministic(),
                "surged KPI text diverged at {threads} threads on {kernel}"
            );
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "surged fingerprint diverged at {threads} threads on {kernel}"
            );
        }
    }
}

/// A zero-shock demand plan with the controls off must reproduce the
/// flat busy hour exactly — the scenario machinery may not spend a
/// single RNG draw or reorder a single event when it has nothing to do.
#[test]
fn zero_shock_plan_reproduces_flat_run() {
    let flat = run_load(&small_cfg(2));
    let zero = run_load(&LoadConfig {
        scenario: ScenarioConfig::flash(0.0),
        ..small_cfg(2)
    });
    assert_eq!(flat.render_deterministic(), zero.render_deterministic());
    assert_eq!(flat.fingerprint(), zero.fingerprint());
}

/// The flat-plan fast path of `subscriber_plan_demand` is byte-for-byte
/// the historical generator, for every subscriber.
#[test]
fn flat_demand_plans_delegate_exactly() {
    let cfg = small_cfg(1).population;
    let flat = DemandPlan::default();
    for g in 0..96 {
        assert_eq!(
            subscriber_plan(&cfg, 0xD15EA5E, g),
            subscriber_plan_demand(&cfg, &flat, 0xD15EA5E, g),
            "subscriber {g} diverged under the flat demand plan"
        );
    }
}

/// Overload-control interventions grow with shock intensity: a stronger
/// flash crowd can only trip the throttles more, never less. Compared
/// across shocked runs only — a flat run's steady-state throttling
/// noise is not attributable to any shock.
#[test]
fn overload_kpis_monotone_in_intensity() {
    let mut last = None;
    for intensity in [4.0, 10.0, 25.0] {
        let r = run_load(&LoadConfig {
            scenario: ScenarioConfig::flash(intensity),
            ..surge_cfg(2)
        });
        let interventions = r.pages_throttled()
            + r.pages_shed()
            + r.gk_admission_shed()
            + r.pdp_deferred()
            + r.pdp_rejected();
        if let Some(prev) = last {
            assert!(
                interventions >= prev,
                "interventions fell from {prev} to {interventions} at {intensity}x"
            );
        }
        last = Some(interventions);
    }
    assert!(
        last.unwrap() > 0,
        "the strongest shock never tripped a single overload control"
    );
}

// ---- inter-shard trunk chaos ----

/// The cross-shard workload under the full trunk fault plan: envelope
/// loss, duplication, reordering and partitions on every shard pair.
fn trunk_cfg(threads: usize) -> LoadConfig {
    LoadConfig {
        trunk: TrunkPlanConfig::all(1.0),
        ..cross_cfg(threads, 4)
    }
}

/// The tentpole property: a trunk-faulted run — retransmissions, dup
/// suppression, reorder buffering, partition teardowns and heals — is
/// bit-identical at every worker-thread count on both event kernels.
#[test]
fn trunk_faulted_runs_are_thread_and_kernel_invariant() {
    let base = run_load(&trunk_cfg(1));
    for threads in [2, 8] {
        for kernel in [Kernel::Wheel, Kernel::Heap] {
            let other = run_load(&LoadConfig {
                kernel,
                ..trunk_cfg(threads)
            });
            assert_eq!(
                base.render_deterministic(),
                other.render_deterministic(),
                "trunk-faulted KPI text diverged at {threads} threads on {kernel}"
            );
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "trunk-faulted fingerprint diverged at {threads} threads on {kernel}"
            );
        }
    }
}

/// A zero-intensity trunk plan compiles to no windows, and the fabric
/// must then be byte-transparent: same fingerprint as a run that never
/// heard of trunk faults.
#[test]
fn zero_intensity_trunk_plan_changes_nothing() {
    let plain = run_load(&cross_cfg(2, 4));
    let zero = run_load(&LoadConfig {
        trunk: TrunkPlanConfig::all(0.0),
        ..cross_cfg(2, 4)
    });
    assert_eq!(plain.render_deterministic(), zero.render_deterministic());
    assert_eq!(plain.fingerprint(), zero.fingerprint());
}

/// The trunk chaos must actually hurt — and the reliable-delivery
/// machinery must actually absorb it.
#[test]
fn trunk_chaos_bites_and_recovery_runs() {
    let r = run_load(&trunk_cfg(2));
    assert!(
        r.trunk_retransmits() > 0,
        "no trunk flit was ever retransmitted:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.trunk_loss_drops() + r.trunk_partition_drops() > 0,
        "the fault plan never swallowed a transmission:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.trunk_dup_drops() > 0,
        "duplicates were injected but none suppressed:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.trunk_reorder_depth().count() > 0,
        "no out-of-order arrival was ever buffered:\n{}",
        r.render_deterministic()
    );
}

/// Healed-partition convergence: under partition-only chaos, every
/// subscriber stranded by a torn trunk is re-routed to its home anchor
/// once the partition heals, and the heal-to-recovery delay is sampled.
#[test]
fn healed_partition_converges() {
    let r = run_load(&LoadConfig {
        trunk: TrunkPlanConfig::only(TrunkFaultClass::Partition, 1.0),
        ..cross_cfg(2, 4)
    });
    assert!(
        r.trunk_partition_drops() > 0,
        "no transmission ever hit a partition window:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.trunk_heals() > 0,
        "no partition window ever healed:\n{}",
        r.render_deterministic()
    );
    if r.trunk_handoff_drops() > 0 {
        assert!(
            r.trunk_reroutes() > 0,
            "handoffs were torn down but nobody was re-routed on heal:\n{}",
            r.render_deterministic()
        );
        assert_eq!(
            r.trunk_heal_recovery().count(),
            r.trunk_reroutes(),
            "every re-route must sample one heal-to-recovery delay:\n{}",
            r.render_deterministic()
        );
    }
}

/// Reorder-only chaos delays transmissions but the receive window's
/// in-order release must hide it completely from the shards: no
/// casualties, no teardowns — only buffered depth samples.
#[test]
fn reordered_flits_never_violate_fifo() {
    let r = run_load(&LoadConfig {
        trunk: TrunkPlanConfig::only(TrunkFaultClass::Reorder, 1.0),
        ..cross_cfg(2, 4)
    });
    assert!(
        r.trunk_reordered() > 0,
        "the reorder plan never delayed a transmission:\n{}",
        r.render_deterministic()
    );
    assert!(
        r.trunk_reorder_depth().count() > 0,
        "reordered flits never arrived ahead of sequence:\n{}",
        r.render_deterministic()
    );
    assert_eq!(
        r.trunk_expired(),
        0,
        "pure reordering must never exhaust a retransmission budget:\n{}",
        r.render_deterministic()
    );
    assert_eq!(
        r.trunk_handoff_drops(),
        0,
        "pure reordering must never tear a handoff down:\n{}",
        r.render_deterministic()
    );
}

// ---- KPI time-series snapshots ----

/// The small workload sampled every 30 simulated seconds, so the 90 s
/// window yields several frames plus a drain-phase tail.
fn snapshot_cfg(threads: usize) -> LoadConfig {
    LoadConfig {
        snapshot_secs: 30,
        ..small_cfg(threads)
    }
}

/// The tentpole property: the snapshot stream — frame times, counters,
/// histograms, the composite fingerprint — is bit-identical across
/// worker-thread counts and event kernels, exactly like the end-of-run
/// report it samples.
#[test]
fn snapshot_stream_is_thread_and_kernel_invariant() {
    let base = run_load(&snapshot_cfg(1));
    assert!(
        base.snapshots.len() >= 3,
        "90 s at a 30 s cadence must yield at least 3 frames, got {}",
        base.snapshots.len()
    );
    for threads in [1, 2, 8] {
        for kernel in [Kernel::Wheel, Kernel::Heap] {
            let other = run_load(&LoadConfig {
                kernel,
                ..snapshot_cfg(threads)
            });
            assert_eq!(
                base.snapshot_fingerprint(),
                other.snapshot_fingerprint(),
                "snapshot fingerprint diverged at {threads} threads on {kernel}"
            );
            assert_eq!(
                base.snapshots.len(),
                other.snapshots.len(),
                "frame count diverged at {threads} threads on {kernel}"
            );
            for (a, b) in base.snapshots.iter().zip(&other.snapshots) {
                assert_eq!(a.at_ms, b.at_ms);
                assert_eq!(a.counters, b.counters);
                assert_eq!(
                    a.to_json(""),
                    b.to_json(""),
                    "frame at {} ms diverged at {threads} threads on {kernel}",
                    a.at_ms
                );
            }
        }
    }
}

/// The synthesized aggregate frame must agree with the end-of-run
/// summary KPIs *exactly* — bit-equal floats, not approximately — since
/// both are computed from the same merged stats.
#[test]
fn snapshot_aggregate_equals_summary_kpis() {
    let r = run_load(&snapshot_cfg(2));
    let agg = r.snapshot_aggregate();
    assert_eq!(agg.attempts(), r.attempts());
    assert_eq!(agg.blocking_rate().to_bits(), r.blocking_rate().to_bits());
    assert_eq!(agg.frame_loss().to_bits(), r.frame_loss().to_bits());
    assert_eq!(agg.mos().to_bits(), r.mos().to_bits(), "E-model MOS diverged");
    let (sparse, dense) = (agg.setup_delay(), r.setup_delay());
    assert_eq!(sparse.count(), dense.count());
    assert_eq!(sparse.percentile(50.0).to_bits(), dense.percentile(50.0).to_bits());
    assert_eq!(sparse.percentile(99.0).to_bits(), dense.percentile(99.0).to_bits());
    let (sparse, dense) = (agg.handoff_interruption(), r.handoff_interruption());
    assert_eq!(sparse.count(), dense.count());
    assert_eq!(sparse.percentile(99.0).to_bits(), dense.percentile(99.0).to_bits());
}

/// Frames are cumulative: every counter is non-decreasing along the
/// stream, frame times advance on the nominal cadence grid, and the
/// last frame never exceeds the aggregate.
#[test]
fn snapshot_frames_are_monotone_cumulative() {
    let r = run_load(&snapshot_cfg(2));
    let mut prev: Option<&vgprs_load::SnapshotFrame> = None;
    for frame in &r.snapshots {
        assert_eq!(frame.at_ms % 30_000, 0, "off-grid frame at {} ms", frame.at_ms);
        if let Some(p) = prev {
            assert!(p.at_ms < frame.at_ms, "frame times must strictly increase");
            for (i, name) in vgprs_load::SNAPSHOT_COUNTERS.iter().enumerate() {
                assert!(
                    p.counters[i] <= frame.counters[i],
                    "{name} fell from {} to {} at {} ms",
                    p.counters[i],
                    frame.counters[i],
                    frame.at_ms
                );
            }
        }
        prev = Some(frame);
    }
    let last = r.snapshots.last().expect("at least one frame");
    let agg = r.snapshot_aggregate();
    for (i, name) in vgprs_load::SNAPSHOT_COUNTERS.iter().enumerate() {
        assert!(
            last.counters[i] <= agg.counters[i],
            "{name}: last frame {} exceeds aggregate {}",
            last.counters[i],
            agg.counters[i]
        );
    }
}

/// Snapshot sampling is read-only: turning it off (or changing its
/// cadence) must not move a single bit of the simulation itself.
#[test]
fn snapshot_cadence_does_not_perturb_the_run() {
    let off = run_load(&LoadConfig {
        snapshot_secs: 0,
        ..small_cfg(2)
    });
    assert!(off.snapshots.is_empty(), "cadence 0 must disable sampling");
    let on = run_load(&snapshot_cfg(2));
    assert_eq!(off.fingerprint(), on.fingerprint());
    assert_eq!(off.render_deterministic(), on.render_deterministic());
}
