//! Periodic in-sim KPI snapshots: the observability layer.
//!
//! A [`SnapshotRecorder`] rides inside each shard and, every
//! `snapshot_secs` of *simulated* time, samples a fixed schema of
//! counters and histograms ([`SNAPSHOT_COUNTERS`],
//! [`SNAPSHOT_HISTOGRAMS`]) into a [`SnapshotFrame`]. Frames are
//! **cumulative** — each one is the run-so-far view at its boundary —
//! so a windowed (per-interval) series falls out by subtracting
//! adjacent frames ([`Histogram::delta_from`]) without the recorder
//! ever storing window state.
//!
//! Determinism: shards advance in epoch lockstep (every shard runs
//! every epoch while any shard is busy), so the stats a shard holds at
//! a given epoch boundary are a function of the configuration and seed
//! alone — never of thread count or kernel choice. Sampling happens at
//! epoch ends, and a frame's `at_ms` is the *nominal* cadence boundary
//! it covers, so frames from different shards align index-for-index
//! and merge by simple pairwise addition.
//!
//! Memory: a frame stores `Vec<u64>` counters plus
//! [`SparseHistogram`]s (occupied buckets only), not full `Stats`
//! clones — a dense histogram is ~4 KB, which would dominate at
//! thousands of frames across hundreds of shards.

use vgprs_sim::{Histogram, SparseHistogram, Stats};

/// Counters every snapshot frame samples, in schema order. Fixed and
/// explicit so the frame layout (and the JSON emitted from it) never
/// depends on which counters a particular run happened to touch.
pub const SNAPSHOT_COUNTERS: &[&str] = &[
    "bsc.tch_blocked",
    "gk.admission_rejected_bandwidth",
    "gk.admission_rejected_unknown_alias",
    "gk.admission_shed",
    "load.attempts",
    "load.busy_skipped",
    "load.dropped_baseline",
    "load.dropped_blackhole",
    "load.dropped_link_degrade",
    "load.dropped_node_crash",
    "load.faults_injected",
    "load.handoff_attempts",
    "load.handoff_success",
    "load.trunk_frame_drops",
    "load.trunk_handoff_drops",
    "load.trunk_reroutes",
    "ms.voice_frames_received",
    "ms.voice_frames_sent",
    "sgsn.pdp_admission_deferred",
    "sgsn.pdp_admission_rejected",
    "term.rtp_received",
    "term.rtp_sent",
    "vmsc.admission_rejected",
    "vmsc.pages_shed",
    "vmsc.pages_throttled",
];

/// Histograms every snapshot frame samples, in schema order.
pub const SNAPSHOT_HISTOGRAMS: &[&str] = &[
    "load.handoff_interruption_ms",
    "load.heal_recovery_ms",
    "ms.post_dial_delay_ms",
    "ms.voice_e2e_ms",
    "term.post_dial_delay_ms",
    "term.voice_e2e_ms",
];

/// One cumulative KPI sample: the run-so-far counters and histograms
/// at a cadence boundary, in [`SNAPSHOT_COUNTERS`] /
/// [`SNAPSHOT_HISTOGRAMS`] order.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotFrame {
    /// The nominal cadence boundary this frame covers, in simulated
    /// milliseconds from the shard's busy-hour t0.
    pub at_ms: u64,
    /// Sampled counter values, one per [`SNAPSHOT_COUNTERS`] entry.
    pub counters: Vec<u64>,
    /// Sampled histograms, one per [`SNAPSHOT_HISTOGRAMS`] entry
    /// (empty snapshot when the run never touched the name).
    pub histograms: Vec<SparseHistogram>,
}

impl SnapshotFrame {
    /// Samples the schema out of `stats` at boundary `at_ms`.
    pub fn sample(at_ms: u64, stats: &Stats) -> SnapshotFrame {
        SnapshotFrame {
            at_ms,
            counters: SNAPSHOT_COUNTERS
                .iter()
                .map(|name| stats.counter(name))
                .collect(),
            histograms: SNAPSHOT_HISTOGRAMS
                .iter()
                .map(|name| {
                    stats
                        .histogram(name)
                        .map(SparseHistogram::from_histogram)
                        .unwrap_or_default()
                })
                .collect(),
        }
    }

    /// Folds another shard's frame for the same boundary into this one.
    pub fn merge(&mut self, other: &SnapshotFrame) {
        debug_assert_eq!(self.at_ms, other.at_ms, "merging misaligned frames");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            a.merge(b);
        }
    }

    /// The sampled value of a schema counter; 0 for unknown names.
    pub fn counter(&self, name: &str) -> u64 {
        SNAPSHOT_COUNTERS
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| self.counters[i])
    }

    /// The sampled snapshot of a schema histogram; empty for unknown
    /// names.
    pub fn histogram(&self, name: &str) -> SparseHistogram {
        SNAPSHOT_HISTOGRAMS
            .iter()
            .position(|n| *n == name)
            .map(|i| self.histograms[i].clone())
            .unwrap_or_default()
    }

    fn merged(&self, names: &[&str]) -> SparseHistogram {
        let mut out = SparseHistogram::new();
        for n in names {
            out.merge(&self.histogram(n));
        }
        out
    }

    /// Call attempts the generator issued (busy-suppressed excluded) —
    /// the same denominator [`crate::LoadReport::attempts`] uses.
    pub fn attempts(&self) -> u64 {
        self.counter("load.attempts") - self.counter("load.busy_skipped")
    }

    /// Fraction of attempts refused a traffic channel at the cell.
    pub fn blocking_rate(&self) -> f64 {
        crate::report::ratio(self.counter("bsc.tch_blocked"), self.attempts())
    }

    /// Fraction of attempts the H.323 side refused.
    pub fn reject_rate(&self) -> f64 {
        let rejected = self.counter("gk.admission_rejected_bandwidth")
            + self.counter("gk.admission_rejected_unknown_alias")
            + self.counter("vmsc.admission_rejected");
        crate::report::ratio(rejected, self.attempts())
    }

    /// Voice frame loss across both directions.
    pub fn frame_loss(&self) -> f64 {
        let sent = self.counter("ms.voice_frames_sent") + self.counter("term.rtp_sent");
        let received =
            self.counter("ms.voice_frames_received") + self.counter("term.rtp_received");
        if sent == 0 {
            0.0
        } else {
            1.0 - (received as f64 / sent as f64).min(1.0)
        }
    }

    /// Merged end-to-end call-setup delay.
    pub fn setup_delay(&self) -> SparseHistogram {
        self.merged(&["ms.post_dial_delay_ms", "term.post_dial_delay_ms"])
    }

    /// One-way voice frame delay at both listener types.
    pub fn voice_delay(&self) -> SparseHistogram {
        self.merged(&["ms.voice_e2e_ms", "term.voice_e2e_ms"])
    }

    /// Voice interruption during cross-shard handoff.
    pub fn handoff_interruption(&self) -> SparseHistogram {
        self.histogram("load.handoff_interruption_ms")
    }

    /// E-model MOS at this boundary, scored exactly like
    /// [`crate::LoadReport::mos`] (same codec, playout and frame
    /// constants), so the end-of-run aggregate frame reproduces the
    /// summary MOS bit for bit.
    pub fn mos(&self) -> f64 {
        let delay = self.voice_delay();
        crate::report::score_mos(delay.count(), delay.mean(), self.frame_loss())
    }

    /// Folds this frame into an FNV-1a accumulator: boundary, counter
    /// values, and every histogram's count/sum/occupied buckets.
    pub fn fingerprint_into(&self, h: &mut u64) {
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&self.at_ms.to_le_bytes());
        for &v in &self.counters {
            eat(&v.to_le_bytes());
        }
        for hist in &self.histograms {
            eat(&hist.count().to_le_bytes());
            eat(&hist.sum().to_bits().to_le_bytes());
            for (midpoint, count) in hist.nonzero_buckets() {
                eat(&midpoint.to_bits().to_le_bytes());
                eat(&count.to_le_bytes());
            }
        }
    }

    /// The frame as a JSON object (derived KPIs plus the raw sampled
    /// counters, so `harness diff` can gate both views).
    pub fn to_json(&self, indent: &str) -> String {
        let f = crate::report::json_f64;
        let mut out = String::with_capacity(512);
        out.push_str(&format!("{{\n{indent}  \"at_ms\": {},\n", self.at_ms));
        out.push_str(&format!("{indent}  \"attempts\": {},\n", self.attempts()));
        out.push_str(&format!(
            "{indent}  \"blocking_rate\": {},\n",
            f(self.blocking_rate())
        ));
        out.push_str(&format!(
            "{indent}  \"reject_rate\": {},\n",
            f(self.reject_rate())
        ));
        out.push_str(&format!(
            "{indent}  \"frame_loss\": {},\n",
            f(self.frame_loss())
        ));
        out.push_str(&format!("{indent}  \"mos\": {},\n", f(self.mos())));
        for (name, hist) in [
            ("setup_delay_ms", self.setup_delay()),
            ("voice_delay_ms", self.voice_delay()),
            ("handoff_interruption_ms", self.handoff_interruption()),
        ] {
            out.push_str(&format!(
                "{indent}  \"{name}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}},\n",
                hist.count(),
                f(hist.mean()),
                f(hist.percentile(50.0)),
                f(hist.percentile(99.0))
            ));
        }
        out.push_str(&format!("{indent}  \"counters\": {{"));
        let mut first = true;
        for (name, value) in SNAPSHOT_COUNTERS.iter().zip(&self.counters) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}\n");
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// Samples [`SnapshotFrame`]s on a fixed sim-time cadence. The shard
/// calls [`SnapshotRecorder::observe`] at every epoch end; the recorder
/// emits one frame per elapsed cadence boundary.
#[derive(Clone, Debug)]
pub struct SnapshotRecorder {
    cadence_ms: u64,
    next_ms: u64,
    frames: Vec<SnapshotFrame>,
}

impl SnapshotRecorder {
    /// A recorder sampling every `snapshot_secs` of simulated time;
    /// `0` disables sampling entirely.
    pub fn new(snapshot_secs: u64) -> SnapshotRecorder {
        let cadence_ms = snapshot_secs * 1000;
        SnapshotRecorder {
            cadence_ms,
            next_ms: cadence_ms,
            frames: Vec::new(),
        }
    }

    /// Notes that simulated time has reached `now_ms` (relative to the
    /// busy-hour t0) and samples every cadence boundary passed since
    /// the last call. The frame records the *boundary's* timestamp but
    /// samples the *current* stats — at an epoch end, which is the same
    /// instant for every shard, so the series is thread- and
    /// kernel-invariant.
    pub fn observe(&mut self, now_ms: u64, stats: &Stats) {
        if self.cadence_ms == 0 {
            return;
        }
        while self.next_ms <= now_ms {
            self.frames.push(SnapshotFrame::sample(self.next_ms, stats));
            self.next_ms += self.cadence_ms;
        }
    }

    /// The recorded series, consumed at shard seal time.
    pub fn into_frames(self) -> Vec<SnapshotFrame> {
        self.frames
    }
}

/// The windowed (per-interval) delta between two cumulative frames'
/// histograms, by schema name: `later - earlier` via
/// [`Histogram::delta_from`]. The returned histogram carries no
/// min/max extremes (a window's true extremes are unknowable from
/// cumulative buckets) and merges inertly when empty.
pub fn window_delta(later: &SnapshotFrame, earlier: &SnapshotFrame, name: &str) -> Histogram {
    later
        .histogram(name)
        .to_histogram()
        .delta_from(&earlier.histogram(name).to_histogram())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(pairs: &[(&str, u64)], obs: &[(&str, f64)]) -> Stats {
        let mut s = Stats::new();
        for &(name, v) in pairs {
            // The schema uses interned &'static str names; tests go
            // through the same string API the shards use.
            s.count_by(name, v);
        }
        for &(name, x) in obs {
            s.observe(name, x);
        }
        s
    }

    #[test]
    fn sample_follows_the_schema_order() {
        let s = stats_with(
            &[("load.attempts", 10), ("bsc.tch_blocked", 2)],
            &[("ms.voice_e2e_ms", 55.0)],
        );
        let frame = SnapshotFrame::sample(60_000, &s);
        assert_eq!(frame.counters.len(), SNAPSHOT_COUNTERS.len());
        assert_eq!(frame.histograms.len(), SNAPSHOT_HISTOGRAMS.len());
        assert_eq!(frame.counter("load.attempts"), 10);
        assert_eq!(frame.counter("bsc.tch_blocked"), 2);
        assert_eq!(frame.counter("vmsc.pages_shed"), 0);
        assert_eq!(frame.voice_delay().count(), 1);
        assert_eq!(frame.setup_delay().count(), 0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = stats_with(&[("load.attempts", 4)], &[("ms.voice_e2e_ms", 50.0)]);
        let b = stats_with(&[("load.attempts", 6)], &[("term.voice_e2e_ms", 70.0)]);
        let mut fa = SnapshotFrame::sample(60_000, &a);
        let fb = SnapshotFrame::sample(60_000, &b);
        fa.merge(&fb);
        assert_eq!(fa.counter("load.attempts"), 10);
        let voice = fa.voice_delay();
        assert_eq!(voice.count(), 2);
        assert_eq!(voice.sum(), 120.0);
    }

    #[test]
    fn recorder_emits_one_frame_per_boundary() {
        let s = Stats::new();
        let mut rec = SnapshotRecorder::new(60);
        rec.observe(50, &s); // epoch ends before the first boundary
        rec.observe(60_000, &s); // exactly on it
        rec.observe(185_000, &s); // skips past two more at once
        let frames = rec.into_frames();
        let at: Vec<u64> = frames.iter().map(|f| f.at_ms).collect();
        assert_eq!(at, vec![60_000, 120_000, 180_000]);
    }

    #[test]
    fn recorder_with_zero_cadence_is_inert() {
        let s = Stats::new();
        let mut rec = SnapshotRecorder::new(0);
        rec.observe(1_000_000, &s);
        assert!(rec.into_frames().is_empty());
    }

    #[test]
    fn window_delta_subtracts_cumulative_frames() {
        let early = stats_with(&[], &[("ms.voice_e2e_ms", 50.0)]);
        let mut s2 = early.clone();
        s2.observe("ms.voice_e2e_ms", 80.0);
        let f1 = SnapshotFrame::sample(60_000, &early);
        let f2 = SnapshotFrame::sample(120_000, &s2);
        let w = window_delta(&f2, &f1, "ms.voice_e2e_ms");
        assert_eq!(w.count(), 1);
        assert_eq!(w.sum(), 80.0);
        assert_eq!(w.min(), None, "windows carry no extremes");
    }

    #[test]
    fn frame_json_is_wellformed() {
        let s = stats_with(&[("load.attempts", 3)], &[("ms.voice_e2e_ms", 55.0)]);
        let frame = SnapshotFrame::sample(60_000, &s);
        let json = frame.to_json("    ");
        let doc = vgprs_sim::JsonValue::parse(&json).expect("frame JSON parses");
        assert_eq!(doc.get("at_ms").and_then(|v| v.as_f64()), Some(60_000.0));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("load.attempts"))
                .and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }
}
