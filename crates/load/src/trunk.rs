//! Partition-tolerant inter-shard trunks.
//!
//! The [`Mailbox`](crate::mailbox::Mailbox) of PR 2 assumed the
//! inter-VMSC trunks between shards never lose, duplicate, reorder or
//! partition traffic. [`TrunkFabric`] removes that assumption: it wraps
//! the epoch barrier with a **reliable sequenced protocol** — per
//! `(src, dst)` sequence numbers, a retransmit queue driven by the
//! deterministic [`Backoff`] ladder, duplicate-suppression windows and
//! in-order release — and injects the seeded per-shard-pair chaos
//! compiled by [`vgprs_faults::compile_trunk_plan`].
//!
//! Determinism is structural, not defensive: every fabric step runs on
//! the barrier (single-threaded, shards iterated in index order), every
//! chaos decision is a **stateless draw** from
//! `(seed, src, dst, seq, attempt)` — no mutable RNG whose consumption
//! order could drift — and retransmit deadlines quantize to epoch
//! boundaries. The same configuration therefore produces bit-identical
//! delivery streams at every `--threads` on either event kernel.
//!
//! When the trunk plan is empty the fabric is **disarmed**: `post` and
//! `take_inbox` reproduce the bare mailbox byte for byte (same delivery
//! order, same HLR-directory observation point, zero extra counters), so
//! a zero-intensity plan matches the fault-free fingerprint exactly.
//!
//! Failure semantics mirror an SS7 trunk group:
//!
//! * a flit that exhausts its retransmission ladder is **abandoned**:
//!   the receiver is resynchronized past the hole (later flits release)
//!   and the *sender* shard gets a [`Flit::TrunkExpired`] naming the
//!   casualty, so a mid-ladder Figure 9 handoff resolves by supervised
//!   teardown with a q850 cause instead of hanging forever;
//! * when the last partition window on a pair closes, both ends get a
//!   [`Flit::TrunkHeal`] and re-route the legs they tore down — the
//!   heal-to-recovery delay is a fingerprinted KPI.

use std::collections::{BTreeMap, BTreeSet};

use vgprs_faults::{mix_salt, TrunkFaultClass, TrunkPlan, TrunkPlanConfig, compile_trunk_plan};
use vgprs_sim::{Backoff, SimDuration, SimRng, Stats};

use crate::mailbox::{Envelope, Flit, HlrDirectory};

/// Salt for per-transmission drop/duplicate/reorder decisions.
const SALT_XMIT: u64 = 0x01;
/// Salt for per-transmission duplication decisions.
const SALT_DUP: u64 = 0x02;
/// Salt for per-transmission reorder decisions.
const SALT_REORDER: u64 = 0x03;
/// Salt for ack-return drop decisions.
const SALT_ACK: u64 = 0x04;

/// The retransmission ladder every trunk channel runs: first retry after
/// two epochs, doubling to a 1.6 s cap, six attempts — a ~4.7 s budget,
/// so a short partition recovers by retransmission while a long one
/// exhausts deterministically into supervised teardown.
pub fn retransmit_backoff() -> Backoff {
    Backoff {
        base: SimDuration::from_millis(100),
        factor: 2,
        cap: SimDuration::from_millis(1_600),
        max_attempts: 6,
    }
}

/// Sender half of one directed `(src, dst)` trunk channel.
#[derive(Debug, Default)]
struct TxChannel {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Unacknowledged flits by sequence number.
    unacked: BTreeMap<u64, Pending>,
}

/// One unacknowledged flit awaiting cumulative ack or exhaustion.
#[derive(Debug)]
struct Pending {
    flit: Flit,
    /// Retransmissions performed so far.
    attempt: u32,
    /// Absolute ms when the next retransmission is due.
    due_ms: u64,
}

/// Receiver half of one directed `(src, dst)` trunk channel.
#[derive(Debug, Default)]
struct RxChannel {
    /// Lowest sequence number not yet released in order.
    next_expected: u64,
    /// Out-of-order arrivals awaiting the gap to fill.
    buffer: BTreeMap<u64, Flit>,
}

/// One transmission staged for delivery at the current barrier.
struct Staged {
    src: usize,
    dst: usize,
    seq: u64,
    flit: Flit,
    /// Reorder chaos: shuffled behind this barrier's other deliveries.
    delayed: bool,
}

/// The epoch-barrier trunk layer: the bare mailbox when disarmed, the
/// reliable sequenced protocol plus chaos injection when a trunk plan is
/// in force.
pub struct TrunkFabric {
    shards: usize,
    seed: u64,
    armed: bool,
    backoff: Backoff,
    /// Per unordered pair, indexed `a * shards + b` (a < b); empty when
    /// disarmed.
    plans: Vec<TrunkPlan>,
    /// Was the pair partitioned (level > 0) at the previous barrier?
    was_partitioned: Vec<bool>,
    inboxes: Vec<Vec<(usize, Flit)>>,
    tx: BTreeMap<(usize, usize), TxChannel>,
    rx: BTreeMap<(usize, usize), RxChannel>,
    /// Transmissions staged by `post` for this barrier's `seal`.
    staged: Vec<Staged>,
    /// Cumulative acks generated at the previous barrier, applied at the
    /// next (the one-epoch return trip of a real trunk).
    acks: Vec<(usize, usize, u64)>,
    /// Transport KPIs, merged into the run report only when armed.
    stats: Stats,
    now_ms: u64,
}

impl TrunkFabric {
    /// Builds the fabric. With a zero-intensity (or absent) trunk config
    /// the fabric is disarmed and behaves exactly like the bare mailbox.
    pub fn new(shards: usize, seed: u64, cfg: &TrunkPlanConfig, window_secs: u64) -> Self {
        let armed = shards > 1 && !cfg.is_off() && window_secs > 0;
        let plans = if armed {
            let mut plans = vec![TrunkPlan::default(); shards * shards];
            for a in 0..shards {
                for b in (a + 1)..shards {
                    plans[a * shards + b] = compile_trunk_plan(cfg, seed, a, b, window_secs);
                }
            }
            plans
        } else {
            Vec::new()
        };
        TrunkFabric {
            shards,
            seed,
            armed,
            backoff: retransmit_backoff(),
            was_partitioned: vec![false; if armed { shards * shards } else { 0 }],
            plans,
            inboxes: (0..shards).map(|_| Vec::new()).collect(),
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            staged: Vec::new(),
            acks: Vec::new(),
            stats: Stats::new(),
            now_ms: 0,
        }
    }

    /// True when the reliable protocol (and chaos) is in force.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Transport KPIs accumulated so far (empty when disarmed).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The pair plan governing traffic between `a` and `b`.
    fn plan(&self, a: usize, b: usize) -> &TrunkPlan {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        &self.plans[a * self.shards + b]
    }

    /// Stateless uniform draw for one chaos decision. Pure function of
    /// the identifiers, so a retransmission rolls fresh dice while the
    /// same transmission always rolls the same ones.
    fn draw(&self, kind: u64, src: usize, dst: usize, seq: u64, attempt: u32) -> f64 {
        let stream = mix_salt(
            mix_salt(mix_salt(mix_salt(kind, src as u64), dst as u64), seq),
            attempt as u64,
        );
        SimRng::derive(self.seed, stream).uniform()
    }

    /// Attempts one transmission of `(src → dst, seq)` under the pair's
    /// chaos levels at the current barrier, staging it on survival.
    fn transmit(&mut self, src: usize, dst: usize, seq: u64, attempt: u32, flit: &Flit) {
        let plan = self.plan(src, dst);
        let p_part = plan.level_at(TrunkFaultClass::Partition, self.now_ms);
        let p_loss = plan.level_at(TrunkFaultClass::Loss, self.now_ms);
        let p_dup = plan.level_at(TrunkFaultClass::Dup, self.now_ms);
        let p_reorder = plan.level_at(TrunkFaultClass::Reorder, self.now_ms);
        // One draw decides drop; the partition claims the low range so
        // attribution, like the combined probability, is monotone in
        // intensity.
        let u = self.draw(SALT_XMIT, src, dst, seq, attempt);
        let p_drop = 1.0 - (1.0 - p_part) * (1.0 - p_loss);
        if u < p_drop {
            if u < p_part {
                self.stats.count("trunk.drops_partition");
            } else {
                self.stats.count("trunk.drops_loss");
            }
            return;
        }
        let delayed = self.draw(SALT_REORDER, src, dst, seq, attempt) < p_reorder;
        if delayed {
            self.stats.count("trunk.reordered");
        }
        self.staged.push(Staged { src, dst, seq, flit: clone_flit(flit), delayed });
        if self.draw(SALT_DUP, src, dst, seq, attempt) < p_dup {
            self.stats.count("trunk.dup_injected");
            self.staged.push(Staged { src, dst, seq, flit: clone_flit(flit), delayed });
        }
    }

    /// Posts one shard's epoch output. **Must** be called in ascending
    /// `from_shard` order within a barrier, like `Mailbox::post`.
    ///
    /// Disarmed, this *is* `Mailbox::post` plus the historical
    /// post-time HLR observation. Armed, each envelope gets the next
    /// sequence number on its directed channel, joins the retransmit
    /// queue and rolls its first transmission's dice; the directory is
    /// observed at *delivery* instead, so HLR ownership reflects what
    /// actually arrived.
    pub fn post(&mut self, from_shard: usize, envelopes: Vec<Envelope>, directory: &mut HlrDirectory) {
        if !self.armed {
            for env in envelopes {
                directory.observe(from_shard, &env);
                self.inboxes[env.to_shard].push((from_shard, env.flit));
            }
            return;
        }
        for env in envelopes {
            let dst = env.to_shard;
            let chan = self.tx.entry((from_shard, dst)).or_default();
            let seq = chan.next_seq;
            chan.next_seq += 1;
            let due_ms = self.now_ms
                + self.backoff.delay(0).expect("ladder allows a first retry").as_millis();
            chan.unacked.insert(seq, Pending { flit: clone_flit(&env.flit), attempt: 0, due_ms });
            self.transmit(from_shard, dst, seq, 0, &env.flit);
        }
    }

    /// Runs the armed barrier step at `now_ms` (the boundary the epoch
    /// just reached): applies last barrier's acks, retransmits due
    /// flits, resolves exhausted ones, releases arrivals in sequence
    /// order, emits heal notifications and generates this barrier's
    /// acks. A no-op when disarmed.
    pub fn seal(&mut self, now_ms: u64, directory: &mut HlrDirectory) {
        if !self.armed {
            return;
        }
        self.now_ms = now_ms;

        // 1. Acks generated at the previous barrier arrive now and
        //    cancel retransmission for everything below them.
        for (src, dst, cum) in std::mem::take(&mut self.acks) {
            if let Some(chan) = self.tx.get_mut(&(src, dst)) {
                chan.unacked.retain(|&seq, _| seq >= cum);
            }
        }

        // 2. Retransmit scan, channels and sequences in ascending order.
        //    A flit whose ladder is exhausted is abandoned: the receiver
        //    resynchronizes past the hole and the sender shard is told.
        let mut expired: Vec<(usize, usize, u64, Flit)> = Vec::new();
        let mut retransmit: Vec<(usize, usize, u64, u32, Flit)> = Vec::new();
        for (&(src, dst), chan) in self.tx.iter_mut() {
            let mut dead = Vec::new();
            for (&seq, pending) in chan.unacked.iter_mut() {
                if pending.due_ms > now_ms {
                    continue;
                }
                pending.attempt += 1;
                match self.backoff.delay(pending.attempt) {
                    Some(d) => {
                        pending.due_ms = now_ms + d.as_millis();
                        retransmit.push((src, dst, seq, pending.attempt, clone_flit(&pending.flit)));
                    }
                    None => dead.push(seq),
                }
            }
            for seq in dead {
                let pending = chan.unacked.remove(&seq).expect("collected above");
                expired.push((src, dst, seq, pending.flit));
            }
        }
        for (src, dst, seq, attempt, flit) in retransmit {
            self.stats.count("trunk.retransmits");
            self.transmit(src, dst, seq, attempt, &flit);
        }
        let mut touched: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (src, dst, seq, _) in &expired {
            self.stats.count("trunk.expired");
            // Resynchronize the receiver past the abandoned sequence so
            // buffered later flits release instead of waiting forever.
            let chan = self.rx.entry((*src, *dst)).or_default();
            if chan.next_expected <= *seq {
                chan.next_expected = seq + 1;
                touched.insert((*src, *dst));
                Self::release(chan, *src, *dst, &mut self.inboxes, directory);
            }
        }

        // 3. Reorder chaos: delayed transmissions slip behind the rest
        //    of the barrier (stable, so everything else keeps its order).
        let mut staged = std::mem::take(&mut self.staged);
        staged.sort_by_key(|s| s.delayed);

        // 4. Receive: duplicate suppression, out-of-order buffering,
        //    in-order release into the destination inbox.
        for s in staged {
            let chan = self.rx.entry((s.src, s.dst)).or_default();
            touched.insert((s.src, s.dst));
            if s.seq < chan.next_expected || chan.buffer.contains_key(&s.seq) {
                self.stats.count("trunk.dup_drops");
                continue;
            }
            if s.seq > chan.next_expected {
                self.stats.observe("trunk.reorder_depth", (s.seq - chan.next_expected) as f64);
            }
            chan.buffer.insert(s.seq, s.flit);
            Self::release(chan, s.src, s.dst, &mut self.inboxes, directory);
        }

        // 5. Abandonment notices to the sender shards, after any
        //    releases the resynchronization produced.
        for (src, dst, _seq, flit) in expired {
            let (call, global, kind) = flit.casualty();
            self.inboxes[src].push((dst, Flit::TrunkExpired { peer: dst, call, global, kind }));
        }

        // 6. Heal edges: the instant a pair's partition level returns to
        //    zero, both ends learn the trunk is back.
        for a in 0..self.shards {
            for b in (a + 1)..self.shards {
                let idx = a * self.shards + b;
                let level = self.plans[idx].level_at(TrunkFaultClass::Partition, now_ms);
                let partitioned = level > 0.0;
                if self.was_partitioned[idx] && !partitioned {
                    self.stats.count("trunk.heals");
                    self.inboxes[a].push((b, Flit::TrunkHeal { peer: b }));
                    self.inboxes[b].push((a, Flit::TrunkHeal { peer: a }));
                }
                self.was_partitioned[idx] = partitioned;
            }
        }

        // 7. Cumulative acks for every channel that heard anything this
        //    barrier, subject to reverse-direction chaos, applied at the
        //    next barrier.
        for (src, dst) in touched {
            let cum = self.rx[&(src, dst)].next_expected;
            let plan = self.plan(src, dst);
            let p_part = plan.level_at(TrunkFaultClass::Partition, now_ms);
            let p_loss = plan.level_at(TrunkFaultClass::Loss, now_ms);
            let p_drop = 1.0 - (1.0 - p_part) * (1.0 - p_loss);
            if self.draw(mix_salt(SALT_ACK, now_ms), dst, src, cum, 0) < p_drop {
                self.stats.count("trunk.acks_dropped");
                continue;
            }
            self.acks.push((src, dst, cum));
        }
    }

    /// Releases every in-sequence buffered flit on `(src → dst)` into
    /// the destination inbox, observing the HLR directory at delivery.
    fn release(
        chan: &mut RxChannel,
        src: usize,
        dst: usize,
        inboxes: &mut [Vec<(usize, Flit)>],
        directory: &mut HlrDirectory,
    ) {
        while let Some(flit) = chan.buffer.remove(&chan.next_expected) {
            chan.next_expected += 1;
            directory.observe(src, &Envelope { to_shard: dst, flit: clone_flit(&flit) });
            inboxes[dst].push((src, flit));
        }
    }

    /// Takes everything queued for `shard`, in delivery order.
    pub fn take_inbox(&mut self, shard: usize) -> Vec<(usize, Flit)> {
        std::mem::take(&mut self.inboxes[shard])
    }

    /// Work still owed by the fabric: undelivered inbox entries plus —
    /// when armed — unacknowledged flits, buffered out-of-order
    /// arrivals and in-flight acks. The engine keeps epoching while any
    /// of these remain, so retransmission ladders always resolve.
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum::<usize>()
            + self.tx.values().map(|c| c.unacked.len()).sum::<usize>()
            + self.rx.values().map(|c| c.buffer.len()).sum::<usize>()
            + self.acks.len()
    }
}

/// `Flit` is `Clone`, but spelled out so a future non-cloneable payload
/// shows up here instead of deep in the fabric.
fn clone_flit(flit: &Flit) -> Flit {
    flit.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{ExpiredKind, Mailbox};
    use vgprs_faults::TrunkPlanConfig;

    const EPOCH: u64 = crate::mailbox::EPOCH_MS;

    fn arrive(to_shard: usize, global: usize) -> Envelope {
        Envelope { to_shard, flit: Flit::Arrive { global } }
    }

    fn directory() -> HlrDirectory {
        HlrDirectory::new(&[(0, 8), (8, 8)])
    }

    /// Disarmed, the fabric must be byte-for-byte the bare mailbox:
    /// same delivery tuples, same HLR observation point.
    #[test]
    fn disarmed_fabric_matches_bare_mailbox() {
        let mut fabric = TrunkFabric::new(2, 42, &TrunkPlanConfig::all(0.0), 300);
        assert!(!fabric.armed());
        let mut mb = Mailbox::new(2);
        let mut dir_f = directory();
        let mut dir_m = directory();
        let posts = vec![arrive(1, 2), arrive(1, 3)];
        fabric.post(0, posts.clone(), &mut dir_f);
        for env in posts {
            dir_m.observe(0, &env);
            mb.post(0, vec![env]);
        }
        fabric.seal(EPOCH, &mut dir_f);
        assert_eq!(fabric.in_flight(), mb.in_flight());
        let a = fabric.take_inbox(1);
        let b = mb.take_inbox(1);
        assert_eq!(a.len(), b.len());
        for ((fa, xa), (fb, xb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(format!("{xa:?}"), format!("{xb:?}"));
        }
        assert_eq!(dir_f.owner_of(2), dir_m.owner_of(2));
        assert_eq!(dir_f.relocations(), dir_m.relocations());
    }

    /// Armed but between chaos windows, delivery is next-barrier and
    /// in order, exactly like the bare mailbox.
    #[test]
    fn armed_fabric_delivers_in_order_when_quiet() {
        let mut fabric = TrunkFabric::new(2, 42, &TrunkPlanConfig::all(1.0), 300);
        assert!(fabric.armed());
        let mut dir = directory();
        // t = 0 is before every chaos window (they start at >= 5% of
        // the run), so nothing drops.
        fabric.post(0, vec![arrive(1, 0), arrive(1, 1)], &mut dir);
        fabric.seal(EPOCH, &mut dir);
        let inbox = fabric.take_inbox(1);
        let globals: Vec<usize> = inbox
            .iter()
            .map(|(_, f)| match f {
                Flit::Arrive { global } => *global,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(globals, vec![0, 1]);
        // Delivery-time observation moved ownership.
        assert_eq!(dir.owner_of(0), 1);
        // Ack returns next barrier; after it the channel is clean.
        fabric.seal(2 * EPOCH, &mut dir);
        fabric.seal(3 * EPOCH, &mut dir);
        assert_eq!(fabric.in_flight(), 0, "acked channel must drain");
        assert_eq!(fabric.stats().counter("trunk.retransmits"), 0);
    }

    /// A fabric under a full partition retransmits on the backoff
    /// ladder and, when it exhausts, abandons the flit, notifies the
    /// sender and leaves no pending state behind — the
    /// cancel-during-retransmit / no-leaked-timers property.
    #[test]
    fn exhausted_retransmission_resolves_and_leaks_nothing() {
        // A plan whose partition covers the whole run: one synthetic
        // window, full drop, no ramp.
        let mut fabric = TrunkFabric::new(2, 42, &TrunkPlanConfig::default(), 300);
        fabric.armed = true;
        fabric.plans = vec![TrunkPlan::default(); 4];
        fabric.was_partitioned = vec![false; 4];
        fabric.plans[1].windows.push(vgprs_faults::TrunkWindow {
            at_ms: 0,
            duration_ms: u64::MAX / 2,
            class: TrunkFaultClass::Partition,
            level: 1.0,
            ramp_ms: 0,
        });
        let mut dir = directory();
        fabric.post(0, vec![arrive(1, 3)], &mut dir);
        let budget_ms = retransmit_backoff().total_budget().as_millis();
        let mut t = 0;
        while fabric.in_flight() > 0 && t < budget_ms + 10 * EPOCH {
            t += EPOCH;
            fabric.seal(t, &mut dir);
        }
        assert_eq!(fabric.in_flight() , 1, "only the expiry notice may remain");
        let notice = fabric.take_inbox(0);
        assert_eq!(notice.len(), 1);
        match &notice[0].1 {
            Flit::TrunkExpired { peer: 1, call: None, global: Some(3), kind } => {
                assert_eq!(*kind, ExpiredKind::Mobility);
            }
            other => panic!("expected TrunkExpired, got {other:?}"),
        }
        assert_eq!(fabric.stats().counter("trunk.expired"), 1);
        assert_eq!(
            fabric.stats().counter("trunk.retransmits"),
            (retransmit_backoff().max_attempts - 1) as u64,
            "every rung of the ladder must have been climbed"
        );
        // Nothing leaked: no unacked entries, no buffers, no acks.
        assert_eq!(fabric.in_flight(), 0);
        // The HLR never heard about the move — it was never delivered.
        assert_eq!(dir.owner_of(3), 0);
        assert_eq!(dir.relocations(), 0);
    }

    /// An ack arriving while retransmissions are outstanding cancels
    /// the pending entry: no further retransmits, no leaked state.
    #[test]
    fn ack_cancels_outstanding_retransmission() {
        let mut fabric = TrunkFabric::new(2, 42, &TrunkPlanConfig::all(1.0), 300);
        let mut dir = directory();
        fabric.post(0, vec![arrive(1, 5)], &mut dir);
        fabric.seal(EPOCH, &mut dir); // delivered, ack generated
        assert_eq!(fabric.take_inbox(1).len(), 1);
        fabric.seal(2 * EPOCH, &mut dir); // ack applied
        let retransmits = fabric.stats().counter("trunk.retransmits");
        for k in 3..40 {
            fabric.seal(k * EPOCH, &mut dir);
        }
        assert_eq!(
            fabric.stats().counter("trunk.retransmits"),
            retransmits,
            "acked flit kept retransmitting"
        );
        assert_eq!(fabric.in_flight(), 0);
    }

    /// The (time, seq) FIFO contract: whatever the reorder chaos does
    /// within a barrier, a channel's flits are released in exactly the
    /// order they were posted.
    #[test]
    fn reordered_flits_release_in_posted_order() {
        let mut fabric = TrunkFabric::new(2, 7, &TrunkPlanConfig::only(TrunkFaultClass::Reorder, 4.0), 300);
        let mut dir = HlrDirectory::new(&[(0, 64), (64, 64)]);
        let mut released = Vec::new();
        let mut posted = Vec::new();
        let mut next_global = 0usize;
        // Walk the whole run so several reorder windows are crossed.
        for k in 1..=600u64 {
            let mut batch = Vec::new();
            for _ in 0..3 {
                batch.push(arrive(1, next_global % 64));
                posted.push(next_global % 64);
                next_global += 1;
            }
            fabric.post(0, batch, &mut dir);
            fabric.seal(k * EPOCH, &mut dir);
            for (_, flit) in fabric.take_inbox(1) {
                if let Flit::Arrive { global } = flit {
                    released.push(global);
                }
            }
        }
        // Drain the tail.
        for k in 601..=700u64 {
            fabric.seal(k * EPOCH, &mut dir);
            for (_, flit) in fabric.take_inbox(1) {
                if let Flit::Arrive { global } = flit {
                    released.push(global);
                }
            }
        }
        assert!(
            fabric.stats().counter("trunk.reordered") > 0,
            "the reorder windows never fired"
        );
        assert_eq!(released, posted, "in-order release violated");
    }

    /// Duplicate chaos is suppressed at the receiver: each sequence
    /// number is released exactly once.
    #[test]
    fn duplicates_are_suppressed() {
        let mut fabric = TrunkFabric::new(2, 7, &TrunkPlanConfig::only(TrunkFaultClass::Dup, 4.0), 300);
        let mut dir = HlrDirectory::new(&[(0, 64), (64, 64)]);
        let mut released = 0u64;
        let mut posted = 0u64;
        for k in 1..=600u64 {
            fabric.post(0, vec![arrive(1, (k % 64) as usize)], &mut dir);
            posted += 1;
            fabric.seal(k * EPOCH, &mut dir);
            released += fabric.take_inbox(1).len() as u64;
        }
        for k in 601..=700u64 {
            fabric.seal(k * EPOCH, &mut dir);
            released += fabric.take_inbox(1).len() as u64;
        }
        assert!(fabric.stats().counter("trunk.dup_injected") > 0, "dup windows never fired");
        assert!(fabric.stats().counter("trunk.dup_drops") > 0, "no duplicate was suppressed");
        assert_eq!(released, posted, "duplicate escaped suppression");
    }

    /// A heal edge notifies both ends exactly once per closed window.
    #[test]
    fn partition_heal_notifies_both_ends() {
        let mut fabric = TrunkFabric::new(2, 42, &TrunkPlanConfig::default(), 300);
        fabric.armed = true;
        fabric.plans = vec![TrunkPlan::default(); 4];
        fabric.was_partitioned = vec![false; 4];
        fabric.plans[1].windows.push(vgprs_faults::TrunkWindow {
            at_ms: 100,
            duration_ms: 200,
            class: TrunkFaultClass::Partition,
            level: 1.0,
            ramp_ms: 50,
        });
        let mut dir = directory();
        for k in 1..=10u64 {
            fabric.seal(k * EPOCH, &mut dir);
        }
        assert_eq!(fabric.stats().counter("trunk.heals"), 1);
        let a: Vec<_> = fabric.take_inbox(0);
        let b: Vec<_> = fabric.take_inbox(1);
        assert!(matches!(a.as_slice(), [(1, Flit::TrunkHeal { peer: 1 })]));
        assert!(matches!(b.as_slice(), [(0, Flit::TrunkHeal { peer: 0 })]));
    }
}
