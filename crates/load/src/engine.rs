//! The sharded parallel driver.
//!
//! The population is partitioned into a fixed number of shards — a pure
//! function of the configuration, never of the machine — and every
//! shard advances through the busy hour in **epoch lockstep**: a pool
//! of worker threads pulls shards off a shared counter each epoch, and
//! an epoch barrier exchanges cross-shard traffic through the
//! [`Mailbox`](crate::mailbox::Mailbox). Barrier routing iterates
//! shards in index order and delivery happens at epoch boundaries, so
//! the interleaving of inter-shard messages — handoff dialogue, trunk
//! voice, HLR ownership moves — is a function of the configuration and
//! seed alone. Reports are merged in shard order, which makes the KPI
//! output bit-identical for any `--threads`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vgprs_faults::{FaultPlanConfig, TrunkPlanConfig};
use vgprs_scenario::{compile_demand, OverloadControls, ScenarioConfig};
use vgprs_sim::Kernel;

use crate::mailbox::{Flit, HlrDirectory, EPOCH_MS};
use crate::population::{subscriber_plan_demand, PopulationConfig, SubscriberPlan};
use crate::report::LoadReport;
use crate::shard::{Shard, ShardConfig, ShardReport};
use crate::trunk::TrunkFabric;

/// Target shard size when the caller lets the engine pick: small enough
/// that one cell's 64 traffic channels see realistic contention, large
/// enough that per-shard fixed cost (two serving areas) amortizes.
const DEFAULT_SHARD_SUBSCRIBERS: usize = 256;

/// A complete load-run configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total population size.
    pub subscribers: usize,
    /// Shard count; `0` derives one shard per ~256 subscribers.
    /// Changing this changes the simulated world (it is part of the
    /// experiment); changing `threads` never does.
    pub shards: usize,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Population behavior (rates, holds, mix, mobility).
    pub population: PopulationConfig,
    /// Traffic channels per cell.
    pub tch_capacity: usize,
    /// Shared PDCH capacity per cell, bits/second.
    pub pdch_bps: u64,
    /// Gatekeeper admission budget per serving area.
    pub gk_bandwidth: u32,
    /// How long each call's voice is actually sampled; see
    /// [`ShardConfig::voice_sample_ms`].
    pub voice_sample_ms: u64,
    /// Event kernel every shard network runs on. The timer wheel is the
    /// default; the binary heap is kept as the differential oracle
    /// (`harness kernelbench --check`). Fingerprints are identical on
    /// both, so this is a performance knob, never an experiment knob.
    pub kernel: Kernel,
    /// Deterministic fault-injection schedule. The all-off default
    /// compiles to empty plans, and the run is byte-identical to one
    /// without the fault machinery.
    pub faults: FaultPlanConfig,
    /// Deterministic inter-shard trunk chaos (loss, duplication,
    /// reordering, partitions). The all-off default leaves the trunk
    /// fabric disarmed — a bare mailbox — so the run is byte-identical
    /// to one without the reliable-delivery machinery.
    pub trunk: TrunkPlanConfig,
    /// Demand scenario: a daily-profile rate curve plus flash-crowd
    /// shocks, compiled per shard into time-varying arrival plans. The
    /// flat default compiles to empty plans and the run is
    /// byte-identical to one without the scenario machinery.
    pub scenario: ScenarioConfig,
    /// Overload controls (paging throttle, gatekeeper ARJ shedding,
    /// SGSN PDP admission control). All-off by default, which keeps
    /// every node on its historical code path.
    pub controls: OverloadControls,
    /// KPI snapshot cadence in simulated seconds (default 60); `0`
    /// turns time-series sampling off. Sampling is read-only, so the
    /// run's events and fingerprint are identical either way.
    pub snapshot_secs: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            subscribers: 1024,
            shards: 0,
            threads: 0,
            seed: 42,
            population: PopulationConfig::default(),
            tch_capacity: 64,
            pdch_bps: 1_600_000,
            gk_bandwidth: 100_000_000,
            voice_sample_ms: 1_000,
            kernel: Kernel::default(),
            faults: FaultPlanConfig::default(),
            trunk: TrunkPlanConfig::default(),
            scenario: ScenarioConfig::default(),
            controls: OverloadControls::default(),
            snapshot_secs: 60,
        }
    }
}

impl LoadConfig {
    /// The shard count this configuration resolves to.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards.min(self.subscribers.max(1))
        } else {
            self.subscribers.div_ceil(DEFAULT_SHARD_SUBSCRIBERS).max(1)
        }
    }

    /// The worker-thread count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        let t = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        t.min(self.effective_shards()).max(1)
    }
}

/// Partitions `subscribers` into `shards` near-equal contiguous slices
/// and returns each shard's `(base_index, size)`.
pub fn partition(subscribers: usize, shards: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(shards);
    let base_size = subscribers / shards;
    let remainder = subscribers % shards;
    let mut base = 0;
    for s in 0..shards {
        let size = base_size + usize::from(s < remainder);
        out.push((base, size));
        base += size;
    }
    out
}

/// Runs `worker` on a shared work counter across `threads` threads (or
/// inline when one suffices).
fn run_pool(threads: usize, worker: impl Fn(usize) + Sync) {
    if threads <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let worker = &worker;
                scope.spawn(move || worker(t));
            }
        });
    }
}

/// A shard plus its barrier-exchange buffers, lockable independently so
/// any worker thread can carry any shard through the current epoch.
struct EpochSlot {
    shard: Shard,
    inbox: Vec<(usize, Flit)>,
    outbox: Vec<crate::mailbox::Envelope>,
}

/// Runs the configured busy hour and returns the merged report.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let shards = cfg.effective_shards();
    let threads = cfg.effective_threads();
    let parts = partition(cfg.subscribers, shards);
    let shard_cfgs: Vec<ShardConfig> = parts
        .iter()
        .enumerate()
        .map(|(index, &(base, size))| ShardConfig {
            shard_index: index,
            base_index: base,
            subscribers: size,
            total_shards: shards,
            master_seed: cfg.seed,
            population: cfg.population.clone(),
            tch_capacity: cfg.tch_capacity,
            pdch_bps: cfg.pdch_bps,
            gk_bandwidth: cfg.gk_bandwidth,
            voice_sample_ms: cfg.voice_sample_ms,
            kernel: cfg.kernel,
            faults: cfg.faults,
            scenario: cfg.scenario.clone(),
            controls: cfg.controls,
            snapshot_secs: cfg.snapshot_secs,
        })
        .collect();

    let started = Instant::now();

    // Phase 1: build every shard's world and register its population
    // (parallel; shards are independent until their busy hours start).
    let slots: Vec<Mutex<Option<EpochSlot>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    run_pool(threads, |_t| loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some(shard_cfg) = shard_cfgs.get(index) else {
            break;
        };
        let demand = compile_demand(
            &cfg.scenario,
            cfg.seed,
            shard_cfg.shard_index,
            cfg.population.window_secs,
        );
        let plans: Vec<SubscriberPlan> = (0..shard_cfg.subscribers)
            .map(|i| {
                subscriber_plan_demand(&cfg.population, &demand, cfg.seed, shard_cfg.base_index + i)
            })
            .collect();
        *slots[index].lock().expect("no panics while holding the lock") = Some(EpochSlot {
            shard: Shard::new(shard_cfg, &plans),
            inbox: Vec::new(),
            outbox: Vec::new(),
        });
    });

    // Phase 2: epoch lockstep. Each epoch every busy shard simulates the
    // same window, then the barrier routes cross-shard flits (sent epoch
    // k, delivered epoch k+1) and the HLR directory tracks ownership.
    // The trunk fabric is the barrier's delivery layer: a bare mailbox
    // when the trunk plan is empty, the reliable sequenced protocol
    // (retransmits, dedup, in-order release) under trunk chaos.
    let mut fabric = TrunkFabric::new(shards, cfg.seed, &cfg.trunk, cfg.population.window_secs);
    let mut directory = HlrDirectory::new(&parts);
    let mut epoch: u64 = 0;
    loop {
        let mut busy = fabric.in_flight() > 0;
        let mut cap = 0;
        for (index, slot) in slots.iter().enumerate() {
            let mut s = slot.lock().expect("no panics while holding the lock");
            let s = s.as_mut().expect("phase 1 built every shard");
            s.inbox = fabric.take_inbox(index);
            busy |= s.shard.is_busy() || !s.inbox.is_empty();
            cap = cap.max(s.shard.max_epoch_hint());
        }
        if !busy || epoch > cap {
            // Done — or the runaway backstop tripped, in which case the
            // shards still busy count `load.drain_capped` on finish.
            break;
        }
        let next = AtomicUsize::new(0);
        run_pool(threads, |_t| loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(index) else {
                break;
            };
            let mut s = slot.lock().expect("no panics while holding the lock");
            let s = s.as_mut().expect("phase 1 built every shard");
            let inbox = std::mem::take(&mut s.inbox);
            s.outbox = s.shard.run_epoch(epoch, inbox);
        });
        // Barrier: route in shard order so delivery order never depends
        // on which thread finished first. Disarmed, the fabric observes
        // the HLR directory at post time (the historical behavior);
        // armed, ownership is observed at *delivery*, when an
        // Arrive/Depart actually survives the trunk.
        for (index, slot) in slots.iter().enumerate() {
            let mut s = slot.lock().expect("no panics while holding the lock");
            let s = s.as_mut().expect("phase 1 built every shard");
            let outbox = std::mem::take(&mut s.outbox);
            fabric.post(index, outbox, &mut directory);
        }
        fabric.seal((epoch + 1) * EPOCH_MS, &mut directory);
        epoch += 1;
    }
    let wall = started.elapsed();

    // Phase 3: seal shards in index order and merge.
    let mut reports: Vec<ShardReport> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("all workers joined")
                .expect("every shard ran")
                .shard
                .finish()
        })
        .collect();
    reports[0]
        .stats
        .count_by("load.hlr_relocations", directory.relocations());
    // Transport KPIs exist only when the fabric was armed; a disarmed
    // run must not even *create* the counters, or its fingerprint would
    // drift from the fault-free baseline.
    if fabric.armed() {
        reports[0].stats.merge(fabric.stats());
    }
    LoadReport::merge(cfg.subscribers, threads, cfg.snapshot_secs, &reports, wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_contiguously() {
        for (subs, shards) in [(10, 3), (7, 7), (100, 8), (5, 1)] {
            let parts = partition(subs, shards);
            assert_eq!(parts.len(), shards);
            let mut expected_base = 0;
            for (base, size) in &parts {
                assert_eq!(*base, expected_base);
                expected_base += size;
            }
            assert_eq!(expected_base, subs);
            let sizes: Vec<usize> = parts.iter().map(|p| p.1).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "near-equal slices: {sizes:?}");
        }
    }

    #[test]
    fn shard_count_is_machine_independent() {
        let cfg = LoadConfig {
            subscribers: 10_000,
            ..LoadConfig::default()
        };
        assert_eq!(cfg.effective_shards(), 40);
        let pinned = LoadConfig {
            shards: 3,
            ..cfg.clone()
        };
        assert_eq!(pinned.effective_shards(), 3);
    }
}
