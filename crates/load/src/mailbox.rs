//! The deterministic inter-shard fabric.
//!
//! Shards are independent [`vgprs_sim::Network`]s, so a subscriber that
//! leaves its home shard cannot simply be handed a `NodeId` in another
//! network. Instead every shard runs in **epoch lockstep**: all shards
//! simulate the same [`EPOCH_MS`] window of their busy hour, then a
//! barrier exchanges [`Flit`]s through the [`Mailbox`]. A flit sent
//! during epoch `k` is delivered at the start of epoch `k + 1`, iterated
//! in (source-shard, send-order) order — a total order that depends only
//! on the configuration and seed, never on how many worker threads
//! carried the shards. That is what keeps `--threads 1` and
//! `--threads 8` bit-identical even with subscribers migrating between
//! shards mid-call.
//!
//! Inside a shard, two *gate* nodes terminate the cross-shard legs:
//!
//! * [`TrunkGate`] sits at the far end of the home VMSC's E interface.
//!   Outbound MAP handoff dialogue and E-trunk voice are captured for
//!   the barrier; inbound flits are re-injected toward the VMSC. The
//!   home VMSC sees it as the neighboring VMSC of the paper's Figure 9.
//! * [`RadioGate`] plays the border cell ([`BORDER_CELL`]): an A
//!   interface toward the home VMSC (it is the "BSC" of every visiting
//!   handset) and a Um link to every local handset that may roam out.
//!
//! The [`HlrDirectory`] is the sharded-HLR ownership map: it watches
//! `Arrive`/`Depart` flits at the barrier and tracks which shard's HLR
//! currently holds each subscriber's record.

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{CallId, CellId, Cic, ConnRef, Dtap, MapMessage, Message};

/// Lockstep window length. Cross-shard signaling pays at least one
/// barrier per direction, so this is also the quantum of inter-VMSC
/// latency — 50 ms, on the order of a real inter-MSC SS7 round trip.
pub const EPOCH_MS: u64 = 50;

/// The pseudo-cell every cross-shard mover reports when it leaves its
/// home shard. The home VMSC routes it to the [`TrunkGate`]; the moving
/// MS camps on the [`RadioGate`].
pub const BORDER_CELL: CellId = CellId(0xFFFF);

/// One unit of cross-shard traffic, exchanged at epoch barriers.
#[derive(Clone, Debug)]
pub enum Flit {
    /// MAP handoff dialogue between anchor and target VMSC (Figure 9).
    Map(MapMessage),
    /// One E-trunk voice frame on an inter-VMSC circuit. `origin_off_us`
    /// is relative to the *source* shard's busy-hour start; the receiver
    /// rebases it onto its own clock so end-to-end delay stays
    /// meaningful across shards.
    Trunk {
        /// Circuit carrying the frame.
        cic: Cic,
        /// Call occupying the circuit.
        call: CallId,
        /// Frame sequence number.
        seq: u32,
        /// Frame creation time, microseconds since the source shard's t0.
        origin_off_us: u64,
    },
    /// Um uplink from a visiting subscriber's handset (radio leg lives
    /// in the target shard, the handset in the home shard).
    UmUp {
        /// The subscriber's global population index.
        global: usize,
        /// Signaling or voice content.
        dtap: Dtap,
    },
    /// A-interface downlink from the target VMSC toward a visiting
    /// subscriber's handset back home.
    ADown {
        /// The subscriber's global population index.
        global: usize,
        /// Signaling or voice content.
        dtap: Dtap,
    },
    /// Idle-mode arrival: the destination shard's HLR takes ownership of
    /// the subscriber's record.
    Arrive {
        /// The subscriber's global population index.
        global: usize,
    },
    /// Idle-mode departure: the destination shard's HLR cancels the
    /// subscriber's record (ownership returned to the sender).
    Depart {
        /// The subscriber's global population index.
        global: usize,
    },
    /// Transport notification, generated at the barrier by the trunk
    /// fabric (never posted by a shard): retransmission toward `peer`
    /// exhausted its backoff budget and the flit was abandoned. The
    /// *sender* shard receives this and resolves the affected call or
    /// subscriber — supervised teardown with a q850 cause for a
    /// mid-ladder handoff, HLR revert for a lost mobility move.
    TrunkExpired {
        /// Destination shard that never confirmed delivery.
        peer: usize,
        /// Call the abandoned flit belonged to, when it carried one.
        call: Option<CallId>,
        /// Subscriber the abandoned flit belonged to, when it named one.
        global: Option<usize>,
        /// What kind of traffic was abandoned.
        kind: ExpiredKind,
    },
    /// Transport notification: the partition on the trunk toward `peer`
    /// healed (its last chaos window closed). Both ends receive this and
    /// re-route any leg they tore down while the trunk was dark.
    TrunkHeal {
        /// The shard at the other end of the healed trunk.
        peer: usize,
    },
}

/// What kind of traffic an abandoned (retransmission-exhausted) flit
/// carried; drives the sender shard's resolution procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpiredKind {
    /// Figure 9 MAP handoff dialogue, or a visiting subscriber's radio
    /// leg — the handoff cannot complete and the call must be torn down.
    Handoff,
    /// Rebased E-trunk voice: the frames are stale-cell loss.
    Voice,
    /// Idle-mode `Arrive`/`Depart`: the HLR ownership move never landed.
    Mobility,
    /// Any other cross-shard signaling.
    Signal,
}

impl Flit {
    /// Who is harmed if this flit is abandoned: the call it belongs to,
    /// the subscriber it names, and the resolution procedure to run.
    pub fn casualty(&self) -> (Option<CallId>, Option<usize>, ExpiredKind) {
        match self {
            Flit::Map(
                MapMessage::PrepareHandover { call, .. }
                | MapMessage::PrepareHandoverAck { call, .. }
                | MapMessage::SendEndSignal { call }
                | MapMessage::SendEndSignalAck { call },
            ) => (Some(*call), None, ExpiredKind::Handoff),
            Flit::Map(_) => (None, None, ExpiredKind::Signal),
            Flit::Trunk { call, .. } => (Some(*call), None, ExpiredKind::Voice),
            Flit::UmUp { global, .. } | Flit::ADown { global, .. } => {
                (None, Some(*global), ExpiredKind::Handoff)
            }
            Flit::Arrive { global } | Flit::Depart { global } => {
                (None, Some(*global), ExpiredKind::Mobility)
            }
            Flit::TrunkExpired { call, global, kind, .. } => (*call, *global, *kind),
            Flit::TrunkHeal { .. } => (None, None, ExpiredKind::Signal),
        }
    }
}

/// A flit addressed to a destination shard.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Destination shard index.
    pub to_shard: usize,
    /// The traffic.
    pub flit: Flit,
}

/// Epoch-barrier message exchange between shards.
///
/// Delivery order is total and machine-independent: inbox entries are
/// appended in ascending source-shard order, and each source's envelopes
/// keep their send order.
#[derive(Debug)]
pub struct Mailbox {
    inboxes: Vec<Vec<(usize, Flit)>>,
}

impl Mailbox {
    /// An empty mailbox for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Mailbox {
            inboxes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Posts one shard's epoch output. **Must** be called in ascending
    /// `from_shard` order within a barrier; the engine iterates shards
    /// in index order regardless of which thread ran them.
    pub fn post(&mut self, from_shard: usize, envelopes: Vec<Envelope>) {
        for env in envelopes {
            self.inboxes[env.to_shard].push((from_shard, env.flit));
        }
    }

    /// Takes everything queued for `shard`, in delivery order.
    pub fn take_inbox(&mut self, shard: usize) -> Vec<(usize, Flit)> {
        std::mem::take(&mut self.inboxes[shard])
    }

    /// Flits queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }
}

/// The sharded-HLR ownership map: which shard's HLR currently holds
/// each subscriber's record. Updated at epoch barriers from the
/// `Arrive`/`Depart` flits crossing the mailbox.
#[derive(Debug)]
pub struct HlrDirectory {
    owner: Vec<u32>,
    relocations: u64,
}

impl HlrDirectory {
    /// Initial ownership from the partition's `(base, size)` slices.
    pub fn new(partition: &[(usize, usize)]) -> Self {
        let total: usize = partition.iter().map(|p| p.1).sum();
        let mut owner = vec![0u32; total];
        for (shard, &(base, size)) in partition.iter().enumerate() {
            for o in &mut owner[base..base + size] {
                *o = shard as u32;
            }
        }
        HlrDirectory {
            owner,
            relocations: 0,
        }
    }

    /// Observes one envelope at the barrier. An `Arrive` moves the
    /// record to the destination shard; a `Depart` returns it to the
    /// sender (the subscriber went home).
    pub fn observe(&mut self, from_shard: usize, env: &Envelope) {
        let (global, new_owner) = match env.flit {
            Flit::Arrive { global } => (global, env.to_shard as u32),
            Flit::Depart { global } => (global, from_shard as u32),
            _ => return,
        };
        if self.owner[global] != new_owner {
            self.owner[global] = new_owner;
            self.relocations += 1;
        }
    }

    /// Which shard's HLR owns `global`'s record right now.
    pub fn owner_of(&self, global: usize) -> usize {
        self.owner[global] as usize
    }

    /// How many times any record changed hands.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }
}

/// The far end of the home VMSC's inter-shard E interface.
///
/// To the VMSC this node *is* the neighbor VMSC serving [`BORDER_CELL`]:
/// MAP dialogue and trunk voice sent to it are captured for the next
/// barrier, and flits delivered from other shards are relayed in.
#[derive(Debug)]
pub struct TrunkGate {
    vmsc: NodeId,
    captured: Vec<Message>,
}

impl TrunkGate {
    /// A gate relaying to/capturing from `vmsc`.
    pub fn new(vmsc: NodeId) -> Self {
        TrunkGate {
            vmsc,
            captured: Vec::new(),
        }
    }

    /// Drains everything the VMSC sent out since the last barrier.
    pub fn take_captured(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.captured)
    }
}

impl Node<Message> for TrunkGate {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match iface {
            // Flits delivered at the barrier re-enter the sim here.
            Interface::Internal => ctx.send(self.vmsc, msg),
            Interface::E => self.captured.push(msg),
            _ => ctx.count("gate.unexpected_message"),
        }
    }
}

/// The border cell: radio infrastructure for subscribers visiting from
/// or roaming to another shard.
///
/// Toward the home VMSC it is the BSC of every *visiting* handset (the
/// A interface the target VMSC's radio leg lands on). Toward local
/// handsets it is the serving BTS while they roam out: their Um uplink
/// is captured for the barrier, and downlink queued by the driver is
/// flushed to them in-sim.
#[derive(Debug)]
pub struct RadioGate {
    vmsc: NodeId,
    pending_um: Vec<(NodeId, Dtap)>,
    um_up: Vec<(NodeId, Dtap, u64)>,
    a_down: Vec<(ConnRef, Dtap)>,
}

impl RadioGate {
    /// A gate whose A interface terminates at `vmsc`.
    pub fn new(vmsc: NodeId) -> Self {
        RadioGate {
            vmsc,
            pending_um: Vec::new(),
            um_up: Vec::new(),
            a_down: Vec::new(),
        }
    }

    /// Queues downlink toward a local handset. Takes effect when the
    /// driver next kicks the gate with an internal (non-A) message.
    pub fn queue_um(&mut self, ms: NodeId, dtap: Dtap) {
        self.pending_um.push((ms, dtap));
    }

    /// Drains captured Um uplink: `(handset, content, capture time µs)`.
    pub fn take_um_up(&mut self) -> Vec<(NodeId, Dtap, u64)> {
        std::mem::take(&mut self.um_up)
    }

    /// Drains captured A-interface downlink for visiting subscribers.
    pub fn take_a_down(&mut self) -> Vec<(ConnRef, Dtap)> {
        std::mem::take(&mut self.a_down)
    }
}

impl Node<Message> for RadioGate {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            // A visitor's uplink, delivered at the barrier: relay into
            // the VMSC as this "BSC"'s A-interface traffic.
            (Interface::Internal, Message::A { conn, dtap }) => {
                ctx.send(self.vmsc, Message::A { conn, dtap });
            }
            // Any other internal message is the driver's kick: flush
            // queued downlink to the local handsets camped on us.
            (Interface::Internal, _) => {
                for (ms, dtap) in std::mem::take(&mut self.pending_um) {
                    ctx.send(ms, Message::Um(dtap));
                }
            }
            (Interface::Um, Message::Um(dtap)) => {
                self.um_up.push((from, dtap, ctx.now().as_micros()));
            }
            (Interface::A, Message::A { conn, dtap }) => {
                self.a_down.push((conn, dtap));
            }
            _ => ctx.count("gate.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_wire::Imsi;

    fn arrive(to_shard: usize, global: usize) -> Envelope {
        Envelope {
            to_shard,
            flit: Flit::Arrive { global },
        }
    }

    #[test]
    fn mailbox_orders_by_source_shard_then_send_order() {
        let mut mb = Mailbox::new(3);
        // Posted in shard order, as the engine guarantees.
        mb.post(
            0,
            vec![
                Envelope {
                    to_shard: 2,
                    flit: Flit::Arrive { global: 10 },
                },
                Envelope {
                    to_shard: 2,
                    flit: Flit::Depart { global: 11 },
                },
            ],
        );
        mb.post(
            1,
            vec![Envelope {
                to_shard: 2,
                flit: Flit::Arrive { global: 12 },
            }],
        );
        assert_eq!(mb.in_flight(), 3);
        let inbox = mb.take_inbox(2);
        let order: Vec<(usize, usize)> = inbox
            .iter()
            .map(|(from, flit)| {
                let g = match flit {
                    Flit::Arrive { global } | Flit::Depart { global } => *global,
                    _ => unreachable!(),
                };
                (*from, g)
            })
            .collect();
        assert_eq!(order, vec![(0, 10), (0, 11), (1, 12)]);
        assert_eq!(mb.in_flight(), 0);
        assert!(mb.take_inbox(2).is_empty(), "inbox drains exactly once");
    }

    #[test]
    fn directory_tracks_ownership_round_trip() {
        let mut dir = HlrDirectory::new(&[(0, 4), (4, 4)]);
        assert_eq!(dir.owner_of(5), 1);
        dir.observe(1, &arrive(0, 5));
        assert_eq!(dir.owner_of(5), 0);
        assert_eq!(dir.relocations(), 1);
        // The return trip: shard 1 tells shard 0 to drop the record.
        dir.observe(
            1,
            &Envelope {
                to_shard: 0,
                flit: Flit::Depart { global: 5 },
            },
        );
        assert_eq!(dir.owner_of(5), 1);
        assert_eq!(dir.relocations(), 2);
        // Non-mobility flits never touch ownership.
        dir.observe(
            0,
            &Envelope {
                to_shard: 1,
                flit: Flit::Map(MapMessage::CancelLocation {
                    imsi: Imsi::parse("466920000000001").expect("valid"),
                }),
            },
        );
        assert_eq!(dir.relocations(), 2);
    }
}
