//! The synthetic subscriber population.
//!
//! Every subscriber owns two independent random streams — one for call
//! arrivals, one for mobility — derived from the master seed and the
//! subscriber's *global* index. Because the streams never depend on how
//! the population is partitioned, a subscriber's behavior is identical
//! whether the run uses 1 shard or 400, which is what makes sharded
//! results reproducible and comparable across machine sizes.

use vgprs_scenario::DemandPlan;
use vgprs_sim::SimRng;

/// Stream-class salts for [`SimRng::derive`]; distinct odd constants so
/// the call, mobility and crowd-drift streams of one subscriber never
/// collide (nor collide with the scenario compiler's per-shard jitter
/// stream).
const STREAM_CALLS: u64 = 0x9E37_79B9_7F4A_7C15;
const STREAM_MOBILITY: u64 = 0xC2B2_AE3D_27D4_EB4F;
const STREAM_CROWD: u64 = 0xB10C_7A27_5EED_CA11;

/// What a call attempt looks like from the traffic generator's side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// The mobile dials its paired wireline H.323 terminal.
    MoToTerminal,
    /// The paired terminal dials the mobile (exercises paging).
    MtFromTerminal,
    /// The mobile dials another mobile in the same serving area.
    MsToMs,
}

/// Relative weights of the three call kinds; normalized on use.
#[derive(Clone, Copy, Debug)]
pub struct CallMix {
    /// Mobile-originated calls to wireline terminals.
    pub mo: f64,
    /// Mobile-terminated calls from wireline terminals.
    pub mt: f64,
    /// Mobile-to-mobile calls within the serving area.
    pub m2m: f64,
}

impl Default for CallMix {
    fn default() -> Self {
        CallMix {
            mo: 0.45,
            mt: 0.45,
            m2m: 0.10,
        }
    }
}

impl CallMix {
    /// Maps a uniform draw in `[0, 1)` to a call kind.
    pub fn pick(&self, u: f64) -> CallKind {
        let total = (self.mo + self.mt + self.m2m).max(f64::MIN_POSITIVE);
        let x = u * total;
        if x < self.mo {
            CallKind::MoToTerminal
        } else if x < self.mo + self.mt {
            CallKind::MtFromTerminal
        } else {
            CallKind::MsToMs
        }
    }
}

/// Statistical description of the population's busy-hour behavior.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Poisson call-attempt rate per subscriber, in calls per hour.
    pub calls_per_sub_hour: f64,
    /// Mean call holding time (exponential), seconds.
    pub mean_hold_secs: f64,
    /// Holding-time floor so connected calls outlive ringing and answer.
    pub min_hold_secs: f64,
    /// Observation window, seconds of simulated time.
    pub window_secs: u64,
    /// Relative mix of MO / MT / mobile-to-mobile attempts.
    pub mix: CallMix,
    /// Fraction of subscribers that make one idle-mode excursion to the
    /// neighboring location area during the window.
    pub mobility_fraction: f64,
    /// Fraction of subscribers whose excursion leaves their home shard
    /// entirely: the trip targets another shard's serving area, crossing
    /// the inter-shard mailbox (idle-mode HLR ownership transfer, or an
    /// inter-VMSC handoff if the trip lands mid-call). A subscriber
    /// selected here that has no excursion gets one synthesized.
    pub cross_shard_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            calls_per_sub_hour: 4.0,
            mean_hold_secs: 90.0,
            min_hold_secs: 8.0,
            window_secs: 60,
            mix: CallMix::default(),
            mobility_fraction: 0.05,
            cross_shard_fraction: 0.0,
        }
    }
}

/// One scheduled call attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Offset into the window, in milliseconds.
    pub at_ms: u64,
    /// Who calls whom.
    pub kind: CallKind,
    /// How long the originator holds the call before hanging up.
    pub hold_ms: u64,
    /// Raw draw used to select the peer of an [`CallKind::MsToMs`]
    /// call; the shard maps it onto a local subscriber index.
    pub peer_draw: u64,
}

/// One round trip to the neighboring location area and back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Excursion {
    /// When the subscriber re-camps on the neighbor cell, ms.
    pub out_ms: u64,
    /// When it returns to the home cell, ms.
    pub back_ms: u64,
    /// `Some(draw)` when the trip leaves the home shard; the shard maps
    /// the raw draw onto a destination shard index (the plan itself must
    /// stay independent of shard topology).
    pub cross_shard: Option<u64>,
    /// True for a flash-crowd drift trip: `cross_shard` then already
    /// holds the destination *epicenter* shard index (the crowd spec
    /// names its epicenter, so no topology-dependent mapping is needed).
    pub drift: bool,
}

/// Everything one subscriber will do during the window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubscriberPlan {
    /// Position in the whole population (not the shard).
    pub global_index: usize,
    /// Call attempts, in time order.
    pub arrivals: Vec<Arrival>,
    /// Optional trip to the neighbor location area.
    pub excursion: Option<Excursion>,
}

/// Generates the plan for one subscriber.
///
/// Depends only on `(cfg, master_seed, global_index)` — never on shard
/// topology — so re-partitioning the population cannot change anyone's
/// behavior.
pub fn subscriber_plan(
    cfg: &PopulationConfig,
    master_seed: u64,
    global_index: usize,
) -> SubscriberPlan {
    let g = global_index as u64;
    let mut calls = SimRng::derive(master_seed, STREAM_CALLS.wrapping_add(g));
    let window = cfg.window_secs as f64;

    let mut arrivals = Vec::new();
    if cfg.calls_per_sub_hour > 0.0 {
        let mean_gap = 3600.0 / cfg.calls_per_sub_hour;
        let extra_hold = (cfg.mean_hold_secs - cfg.min_hold_secs).max(0.1);
        let mut t = calls.exponential(mean_gap);
        while t < window {
            let kind = cfg.mix.pick(calls.uniform());
            let hold = cfg.min_hold_secs + calls.exponential(extra_hold);
            arrivals.push(Arrival {
                at_ms: (t * 1000.0) as u64,
                kind,
                hold_ms: (hold * 1000.0) as u64,
                peer_draw: calls.next_u64(),
            });
            t += calls.exponential(mean_gap);
        }
    }

    SubscriberPlan {
        global_index,
        arrivals,
        excursion: mobility_excursion(cfg, master_seed, global_index),
    }
}

/// The mobility half of a subscriber's plan, shared verbatim by the
/// flat and demand-shaped generators so a demand curve can never
/// perturb anyone's idle-mode travel.
fn mobility_excursion(
    cfg: &PopulationConfig,
    master_seed: u64,
    global_index: usize,
) -> Option<Excursion> {
    let g = global_index as u64;
    let window = cfg.window_secs as f64;
    let mut mobility = SimRng::derive(master_seed, STREAM_MOBILITY.wrapping_add(g));
    let excursion = if mobility.chance(cfg.mobility_fraction) {
        let out = mobility.uniform() * window * 0.7;
        let stay = 5.0 + mobility.exponential(window * 0.1);
        Some(Excursion {
            out_ms: (out * 1000.0) as u64,
            back_ms: ((out + stay) * 1000.0) as u64,
            cross_shard: None,
            drift: false,
        })
    } else {
        None
    };
    if cfg.cross_shard_fraction > 0.0 && mobility.chance(cfg.cross_shard_fraction) {
        let draw = mobility.next_u64();
        match excursion {
            Some(e) => Some(Excursion {
                cross_shard: Some(draw),
                ..e
            }),
            None => {
                let out = mobility.uniform() * window * 0.7;
                let stay = 5.0 + mobility.exponential(window * 0.1);
                Some(Excursion {
                    out_ms: (out * 1000.0) as u64,
                    back_ms: ((out + stay) * 1000.0) as u64,
                    cross_shard: Some(draw),
                    drift: false,
                })
            }
        }
    } else {
        excursion
    }
}

/// Generates one subscriber's plan under a compiled [`DemandPlan`].
///
/// A flat plan delegates to [`subscriber_plan`] untouched — not even an
/// accept draw is spent — so a zero-shock scenario is byte-identical to
/// a run without the scenario machinery. A shaped plan drives the
/// time-varying arrival rate by **thinning**: candidates are generated
/// as a homogeneous Poisson stream at the plan's envelope rate, and
/// each is kept with probability `multiplier(t) / envelope`, which
/// yields the exact inhomogeneous process while staying a pure function
/// of `(cfg, demand, master_seed, global_index)`.
///
/// Crowd drift rides a third RNG stream: each [`DriftWindow`] in the
/// plan recruits this subscriber with its window's probability, and a
/// recruit travels to an epicenter shard for the crowd's duration. The
/// draws happen unconditionally per window so one window's outcome
/// never perturbs another's.
///
/// [`DriftWindow`]: vgprs_scenario::DriftWindow
pub fn subscriber_plan_demand(
    cfg: &PopulationConfig,
    demand: &DemandPlan,
    master_seed: u64,
    global_index: usize,
) -> SubscriberPlan {
    if demand.is_flat() {
        return subscriber_plan(cfg, master_seed, global_index);
    }
    let g = global_index as u64;
    let mut calls = SimRng::derive(master_seed, STREAM_CALLS.wrapping_add(g));
    let window = cfg.window_secs as f64;
    let envelope = demand.envelope();

    let mut arrivals = Vec::new();
    if cfg.calls_per_sub_hour > 0.0 {
        let mean_gap = 3600.0 / (cfg.calls_per_sub_hour * envelope);
        let extra_hold = (cfg.mean_hold_secs - cfg.min_hold_secs).max(0.1);
        let mut t = calls.exponential(mean_gap);
        while t < window {
            let at_ms = (t * 1000.0) as u64;
            if calls.chance(demand.multiplier_at_ms(at_ms) / envelope) {
                let kind = cfg.mix.pick(calls.uniform());
                let hold = cfg.min_hold_secs + calls.exponential(extra_hold);
                arrivals.push(Arrival {
                    at_ms,
                    kind,
                    hold_ms: (hold * 1000.0) as u64,
                    peer_draw: calls.next_u64(),
                });
            }
            t += calls.exponential(mean_gap);
        }
    }

    let mut excursion = mobility_excursion(cfg, master_seed, global_index);

    let mut drift_rng = SimRng::derive(master_seed, STREAM_CROWD.wrapping_add(g));
    for w in &demand.drift {
        // Unconditional draws per window, in a fixed order.
        let recruited = drift_rng.chance(w.fraction);
        let target_draw = drift_rng.next_u64();
        let out_jitter = drift_rng.next_u64();
        let back_jitter = drift_rng.next_u64();
        if !recruited || excursion.is_some_and(|e| e.drift) || w.epicenter_shards == 0 {
            continue;
        }
        // Stagger departures over the crowd's first quarter and returns
        // over a few seconds so the location-update storm ramps the way
        // a real crowd builds, instead of arriving in one event burst.
        let span = w.back_ms.saturating_sub(w.out_ms).max(1);
        let out_ms = w.out_ms + out_jitter % (span / 4).max(1);
        let back_ms = (w.back_ms + back_jitter % 5_000).max(out_ms + 1);
        excursion = Some(Excursion {
            out_ms,
            back_ms,
            cross_shard: Some(target_draw % w.epicenter_shards),
            drift: true,
        });
    }

    SubscriberPlan {
        global_index,
        arrivals,
        excursion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_reproducible() {
        let cfg = PopulationConfig::default();
        for g in [0usize, 7, 999] {
            let a = subscriber_plan(&cfg, 42, g);
            let b = subscriber_plan(&cfg, 42, g);
            assert_eq!(a.arrivals.len(), b.arrivals.len());
            for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
                assert_eq!(x.at_ms, y.at_ms);
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.hold_ms, y.hold_ms);
                assert_eq!(x.peer_draw, y.peer_draw);
            }
        }
    }

    #[test]
    fn different_subscribers_differ() {
        let cfg = PopulationConfig {
            calls_per_sub_hour: 60.0,
            window_secs: 3600,
            ..PopulationConfig::default()
        };
        let a = subscriber_plan(&cfg, 42, 0);
        let b = subscriber_plan(&cfg, 42, 1);
        let ta: Vec<u64> = a.arrivals.iter().map(|x| x.at_ms).collect();
        let tb: Vec<u64> = b.arrivals.iter().map(|x| x.at_ms).collect();
        assert_ne!(ta, tb, "independent streams should not coincide");
    }

    #[test]
    fn arrival_rate_is_roughly_poisson() {
        let cfg = PopulationConfig {
            calls_per_sub_hour: 6.0,
            window_secs: 3600,
            mobility_fraction: 0.0,
            ..PopulationConfig::default()
        };
        let total: usize = (0..200)
            .map(|g| subscriber_plan(&cfg, 7, g).arrivals.len())
            .sum();
        // 200 subscribers * 6 calls/hour over one hour = 1200 expected.
        assert!((900..1500).contains(&total), "got {total} arrivals");
    }

    #[test]
    fn holds_respect_the_floor() {
        let cfg = PopulationConfig {
            calls_per_sub_hour: 30.0,
            window_secs: 600,
            ..PopulationConfig::default()
        };
        for g in 0..20 {
            for a in subscriber_plan(&cfg, 3, g).arrivals {
                assert!(a.hold_ms >= (cfg.min_hold_secs * 1000.0) as u64);
            }
        }
    }

    #[test]
    fn cross_shard_rate_zero_leaves_plans_unchanged() {
        let cfg = PopulationConfig {
            mobility_fraction: 0.5,
            ..PopulationConfig::default()
        };
        for g in 0..50 {
            let p = subscriber_plan(&cfg, 42, g);
            assert!(p.excursion.is_none_or(|e| e.cross_shard.is_none()));
        }
    }

    #[test]
    fn cross_shard_fraction_marks_excursions() {
        let cfg = PopulationConfig {
            mobility_fraction: 0.0,
            cross_shard_fraction: 1.0,
            ..PopulationConfig::default()
        };
        // Even subscribers with no idle-mobility excursion get one
        // synthesized when selected for a cross-shard trip.
        for g in 0..50 {
            let e = subscriber_plan(&cfg, 42, g)
                .excursion
                .expect("cross-shard trip synthesized");
            assert!(e.cross_shard.is_some());
            assert!(e.back_ms > e.out_ms, "trip must have positive stay");
        }
    }

    #[test]
    fn cross_shard_draws_are_reproducible() {
        let cfg = PopulationConfig {
            mobility_fraction: 0.3,
            cross_shard_fraction: 0.4,
            ..PopulationConfig::default()
        };
        for g in [0usize, 11, 512] {
            let a = subscriber_plan(&cfg, 9, g);
            let b = subscriber_plan(&cfg, 9, g);
            assert_eq!(
                a.excursion.map(|e| (e.out_ms, e.back_ms, e.cross_shard)),
                b.excursion.map(|e| (e.out_ms, e.back_ms, e.cross_shard)),
            );
        }
    }

    #[test]
    fn mix_extremes() {
        let all_mo = CallMix {
            mo: 1.0,
            mt: 0.0,
            m2m: 0.0,
        };
        assert_eq!(all_mo.pick(0.0), CallKind::MoToTerminal);
        assert_eq!(all_mo.pick(0.999), CallKind::MoToTerminal);
        let all_m2m = CallMix {
            mo: 0.0,
            mt: 0.0,
            m2m: 1.0,
        };
        assert_eq!(all_m2m.pick(0.5), CallKind::MsToMs);
    }
}
