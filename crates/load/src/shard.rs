//! One shard: an independent pair of vGPRS serving areas and the
//! population slice that lives there.
//!
//! A shard owns its own [`Network`], seeded from the master seed and the
//! shard index, so shards can run on any thread in any order and still
//! produce byte-identical statistics. The driver replays each
//! subscriber's [`SubscriberPlan`] against the simulated network: call
//! attempts become `Dial` commands, holds become scheduled `Hangup`s,
//! and mobility excursions become idle-mode cell reselections (or
//! in-call handoffs, if an excursion lands mid-call).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{Bts, MobileStation, Vlr};
use vgprs_sim::{Interface, Network, NodeId, SimDuration, SimRng, SimTime, Stats};
use vgprs_wire::{CallId, CellId, Command, Imsi, Ipv4Addr, Lai, Message, Msisdn, TransportAddr};

use crate::population::{Arrival, CallKind, PopulationConfig, SubscriberPlan};

/// Stream-class salt for per-shard network seeds.
const STREAM_SHARD: u64 = 0x1656_67B1_9E37_79F9;

/// Answer delay plus setup slack: voice is up by this long after a
/// dial that connects (both endpoint types auto-answer after 2 s).
const CONNECT_GRACE_MS: u64 = 3_000;

/// Everything a shard needs to build and drive its world.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Which shard this is (also selects its network seed).
    pub shard_index: usize,
    /// Global index of the shard's first subscriber.
    pub base_index: usize,
    /// How many subscribers live in this shard.
    pub subscribers: usize,
    /// The run's master seed.
    pub master_seed: u64,
    /// Shared population behavior.
    pub population: PopulationConfig,
    /// Traffic channels per cell.
    pub tch_capacity: usize,
    /// Shared PDCH capacity, bits/second.
    pub pdch_bps: u64,
    /// Gatekeeper admission budget.
    pub gk_bandwidth: u32,
    /// How long each connected call actually sends voice frames before
    /// the driver mutes both ends (keeps the event count O(calls), not
    /// O(calls x holding time), while still sampling RTP quality).
    pub voice_sample_ms: u64,
}

/// What one shard hands back for merging.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Which shard produced this.
    pub shard_index: usize,
    /// Subscribers registered through the home VMSC after power-on.
    pub registered: usize,
    /// Simulation events the shard processed.
    pub events: u64,
    /// Simulated time when the shard drained.
    pub sim_end: SimTime,
    /// The shard network's counters and histograms, plus the driver's
    /// own `load.*` counters.
    pub stats: Stats,
}

/// Driver-scheduled actions, totally ordered by `(time, sequence)`.
enum Action {
    Attempt { local: usize, arrival: Arrival },
    Hangup { node: NodeId },
    Mute { a: NodeId, b: NodeId },
    Move { local: usize, cell: CellId },
}

struct Sched {
    at_us: u64,
    seq: u64,
    action: Action,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    /// Reversed so the `BinaryHeap` pops the earliest action first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

struct Subscriber {
    ms: NodeId,
    terminal: NodeId,
    msisdn: Msisdn,
    alias: Msisdn,
    /// Driver-side busy window: suppress attempts that land inside an
    /// earlier call (the generator models a handset, not a trunk).
    busy_until_us: u64,
}

/// Deterministic identity helpers shared with the rest of the crate.
pub fn imsi_for(global: usize) -> Imsi {
    Imsi::parse(&format!("466920{global:09}")).expect("generated IMSI is valid")
}

/// The subscriber's own E.164 number.
pub fn msisdn_for(global: usize) -> Msisdn {
    Msisdn::parse(&format!("88691{global:07}")).expect("generated MSISDN is valid")
}

/// The alias of the subscriber's paired wireline terminal.
pub fn alias_for(global: usize) -> Msisdn {
    Msisdn::parse(&format!("88622{global:07}")).expect("generated alias is valid")
}

/// Builds the shard's world, replays its population slice and returns
/// the merged evidence.
pub fn run_shard(cfg: &ShardConfig, plans: &[SubscriberPlan]) -> ShardReport {
    assert_eq!(plans.len(), cfg.subscribers, "one plan per subscriber");
    let seed = SimRng::derive(cfg.master_seed, STREAM_SHARD.wrapping_add(cfg.shard_index as u64))
        .next_u64();
    let mut net = Network::new(seed);
    net.set_trace_details(false);
    let mut events: u64 = 0;

    // Home serving area plus a neighbor for mobility. Shards are
    // separate networks, so every shard can reuse the same addressing.
    let mut home = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: format!("s{}", cfg.shard_index),
            tch_capacity: cfg.tch_capacity,
            pdch_bps: cfg.pdch_bps,
            gk_bandwidth: cfg.gk_bandwidth,
            ..VgprsZoneConfig::taiwan()
        },
    );
    let neighbor = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: format!("s{}n", cfg.shard_index),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            msrn_prefix: "8869991".into(),
            pool: (Ipv4Addr::from_octets(10, 201, 0, 0), 16),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 2, 0, 2), 1719),
            tch_capacity: cfg.tch_capacity,
            pdch_bps: cfg.pdch_bps,
            gk_bandwidth: cfg.gk_bandwidth,
            ..VgprsZoneConfig::taiwan()
        },
    );
    // One operator, one HLR: the neighbor VLR resolves home IMSIs at
    // the home HLR, and the VMSCs are handoff peers in both directions.
    net.connect(
        neighbor.vlr,
        home.hlr,
        Interface::D,
        home.latency.ss7,
    );
    net.node_mut::<Vlr>(neighbor.vlr)
        .expect("neighbor VLR")
        .add_hlr_route("466", home.hlr);
    net.connect(home.vmsc, neighbor.vmsc, Interface::E, home.latency.e);
    net.node_mut::<Vmsc>(home.vmsc)
        .expect("home VMSC")
        .add_neighbor_cell(neighbor.cell, neighbor.vmsc);
    net.node_mut::<Vmsc>(neighbor.vmsc)
        .expect("neighbor VMSC")
        .add_neighbor_cell(home.cell, home.vmsc);

    let mut subs = Vec::with_capacity(cfg.subscribers);
    for (local, plan) in plans.iter().enumerate() {
        let g = plan.global_index;
        let msisdn = msisdn_for(g);
        let alias = alias_for(g);
        let ms = home.add_subscriber(
            &mut net,
            &format!("ms{g}"),
            imsi_for(g),
            0x5000 + g as u64,
            msisdn,
        );
        let terminal = home.add_terminal(&mut net, &format!("t{g}"), alias);
        if plan.excursion.is_some() {
            // Movers can also camp on (and hand off to) the neighbor.
            net.connect(ms, neighbor.bts, Interface::Um, home.latency.um);
            net.node_mut::<Bts>(neighbor.bts)
                .expect("neighbor BTS")
                .register_ms(ms);
            let m = net.node_mut::<MobileStation>(ms).expect("new MS");
            m.add_neighbor(neighbor.cell, neighbor.bts);
            m.add_neighbor(home.cell, home.bts);
        }
        net.inject(
            SimDuration::from_millis(local as u64 * 7),
            ms,
            Message::Cmd(Command::PowerOn),
        );
        subs.push(Subscriber {
            ms,
            terminal,
            msisdn,
            alias,
            busy_until_us: 0,
        });
    }

    let outcome = net.run_until_quiescent();
    events += outcome.events;
    let registered = net
        .node::<Vmsc>(home.vmsc)
        .expect("home VMSC")
        .registered_count();

    // The busy-hour window starts once registration has settled.
    let t0_us = net.now().as_micros();
    let mut heap = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<Sched>, seq: &mut u64, at_ms: u64, action: Action| {
        heap.push(Sched {
            at_us: at_ms * 1000,
            seq: *seq,
            action,
        });
        *seq += 1;
    };
    for (local, plan) in plans.iter().enumerate() {
        for &arrival in &plan.arrivals {
            push(&mut heap, &mut seq, arrival.at_ms, Action::Attempt { local, arrival });
        }
        if let Some(e) = plan.excursion {
            push(&mut heap, &mut seq, e.out_ms, Action::Move { local, cell: neighbor.cell });
            push(&mut heap, &mut seq, e.back_ms, Action::Move { local, cell: home.cell });
        }
    }

    let mut next_call: u64 = 1;
    while let Some(Sched { at_us, action, .. }) = heap.pop() {
        let outcome = net.run_until(SimTime::from_micros(t0_us + at_us));
        events += outcome.events;
        match action {
            Action::Attempt { local, arrival } => {
                net.stats_mut().count("load.attempts");
                if at_us < subs[local].busy_until_us {
                    net.stats_mut().count("load.busy_skipped");
                    continue;
                }
                let (orig, called, peer) = match arrival.kind {
                    CallKind::MoToTerminal => {
                        (subs[local].ms, subs[local].alias, subs[local].terminal)
                    }
                    CallKind::MtFromTerminal => {
                        (subs[local].terminal, subs[local].msisdn, subs[local].ms)
                    }
                    CallKind::MsToMs => {
                        if cfg.subscribers < 2 {
                            net.stats_mut().count("load.no_peer_available");
                            continue;
                        }
                        let mut p = (arrival.peer_draw % (cfg.subscribers as u64 - 1)) as usize;
                        if p >= local {
                            p += 1;
                        }
                        if at_us < subs[p].busy_until_us {
                            net.stats_mut().count("load.busy_skipped");
                            continue;
                        }
                        subs[p].busy_until_us = at_us + arrival.hold_ms * 1000;
                        (subs[local].ms, subs[p].msisdn, subs[p].ms)
                    }
                };
                subs[local].busy_until_us = at_us + arrival.hold_ms * 1000;
                let call = CallId((cfg.base_index as u64) << 32 | next_call);
                next_call += 1;
                net.inject(
                    SimDuration::ZERO,
                    orig,
                    Message::Cmd(Command::Dial { call, called }),
                );
                let at_ms = at_us / 1000;
                let mute_ms = CONNECT_GRACE_MS + cfg.voice_sample_ms;
                if mute_ms < arrival.hold_ms {
                    push(
                        &mut heap,
                        &mut seq,
                        at_ms + mute_ms,
                        Action::Mute { a: orig, b: peer },
                    );
                }
                push(
                    &mut heap,
                    &mut seq,
                    at_ms + arrival.hold_ms,
                    Action::Hangup { node: orig },
                );
            }
            Action::Hangup { node } => {
                net.inject(SimDuration::ZERO, node, Message::Cmd(Command::Hangup));
            }
            Action::Mute { a, b } => {
                net.inject(SimDuration::ZERO, a, Message::Cmd(Command::StopTalking));
                net.inject(SimDuration::ZERO, b, Message::Cmd(Command::StopTalking));
            }
            Action::Move { local, cell } => {
                net.stats_mut().count("load.moves");
                net.inject(
                    SimDuration::ZERO,
                    subs[local].ms,
                    Message::Cmd(Command::MoveToCell { cell }),
                );
            }
        }
    }

    let outcome = net.run_until_quiescent();
    events += outcome.events;
    if !outcome.quiescent {
        net.stats_mut().count("load.drain_capped");
    }
    net.stats_mut()
        .count_by("load.registered", registered as u64);

    ShardReport {
        shard_index: cfg.shard_index,
        registered,
        events,
        sim_end: net.now(),
        stats: net.stats().clone(),
    }
}
