//! One shard: an independent pair of vGPRS serving areas and the
//! population slice that lives there.
//!
//! A shard owns its own [`Network`], seeded from the master seed and the
//! shard index, so shards can run on any thread in any order and still
//! produce byte-identical statistics. The driver replays each
//! subscriber's [`SubscriberPlan`] against the simulated network: call
//! attempts become `Dial` commands, holds become scheduled `Hangup`s,
//! and mobility excursions become idle-mode cell reselections (or
//! in-call handoffs, if an excursion lands mid-call).
//!
//! Shards no longer run to completion independently: [`Shard`] exposes
//! an epoch-at-a-time interface ([`Shard::run_epoch`]) so the engine can
//! run every shard in lockstep and exchange cross-shard traffic through
//! the [`crate::mailbox`] at each barrier. A subscriber whose excursion
//! carries a `cross_shard` draw leaves the shard entirely: idle-mode
//! trips transfer HLR record ownership to the destination shard, and
//! trips that land mid-call drive the paper's Figure 9 inter-VMSC
//! handoff across the shard boundary — the home VMSC anchors the H.323
//! leg while the destination VMSC takes the radio leg over the E-trunk
//! gate.

use std::collections::{BTreeMap, HashMap};

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_faults::{
    compile_plan, FaultClass, FaultKind, FaultPlan, FaultPlanConfig, LinkSel, NodeSel,
};
use vgprs_gsm::{Bts, Hlr, MobileStation, MsState, Vlr};
use vgprs_scenario::{compile_demand, DemandPlan, OverloadControls, ScenarioConfig};
use vgprs_sim::{
    CalendarWheel, Interface, Kernel, LinkQuality, Network, NodeId, SimDuration, SimRng, SimTime,
    Stats,
};
use vgprs_wire::{
    CallId, Cause, CellId, Command, ConnRef, Dtap, Imsi, Ipv4Addr, Lai, MapMessage, Message,
    Msisdn, SubscriberProfile, TransportAddr,
};

use crate::mailbox::{Envelope, ExpiredKind, Flit, RadioGate, TrunkGate, BORDER_CELL, EPOCH_MS};
use crate::population::{Arrival, CallKind, PopulationConfig, SubscriberPlan};
use crate::snapshot::{SnapshotFrame, SnapshotRecorder};

/// Stream-class salt for per-shard network seeds.
const STREAM_SHARD: u64 = 0x1656_67B1_9E37_79F9;

/// Answer delay plus setup slack: voice is up by this long after a
/// dial that connects (both endpoint types auto-answer after 2 s).
const CONNECT_GRACE_MS: u64 = 3_000;

/// A cross-shard trip landing mid-call only hands off when the call is
/// safely established and has at least this long left before the
/// scheduled hangup — otherwise the mover stays home (a real handset
/// would finish the call on the old cell's fading channel).
const HANDOFF_TAIL_US: u64 = 2_000_000;

/// Idle-mode crossings keep this much distance from the previous call's
/// teardown so the HLR transfer never races an active transaction.
const POST_CALL_SETTLE_US: u64 = 2_000_000;

/// A mover still on a handed-off call when its return is due goes home
/// this long after the hangup instead.
const RETURN_DELAY_MS: u64 = 3_000;

/// How long voice flows on both legs around an in-call handoff before
/// the driver mutes it again (samples the interruption gap).
const HANDOFF_VOICE_MS: u64 = 2_500;

/// Visitor radio legs get connection references far above anything the
/// shard's own BSCs allocate.
const VISITOR_CONN_BASE: u32 = 0x8000_0000;

/// Stream-class salt for redial back-off jitter.
const STREAM_REDIAL: u64 = 0x52ED_1A1B_ACC0_FFEE;

/// A connected call is probed this long after the connect grace window;
/// by then voice is up (or the attempt is dead) on every call kind.
const PROBE_DELAY_MS: u64 = 2_500;

/// Redial back-off base: attempt `n` waits `REDIAL_BASE_MS << n` plus
/// seeded jitter before trying again.
const REDIAL_BASE_MS: u64 = 2_000;

/// Upper bound on the redial jitter drawn per (subscriber, attempt).
const REDIAL_JITTER_MS: u64 = 500;

/// A caller whose call died retries at most this many times.
const MAX_REDIALS: u32 = 2;

/// How long after a crashed backbone peer comes back the VMSC is told
/// to rebuild its subscribers' contexts.
const RESYNC_DELAY_MS: u64 = 100;

/// Everything a shard needs to build and drive its world.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Which shard this is (also selects its network seed).
    pub shard_index: usize,
    /// Global index of the shard's first subscriber.
    pub base_index: usize,
    /// How many subscribers live in this shard.
    pub subscribers: usize,
    /// How many shards the whole run has (cross-shard trips resolve
    /// their destination against this; `1` disables them).
    pub total_shards: usize,
    /// The run's master seed.
    pub master_seed: u64,
    /// Shared population behavior.
    pub population: PopulationConfig,
    /// Traffic channels per cell.
    pub tch_capacity: usize,
    /// Shared PDCH capacity, bits/second.
    pub pdch_bps: u64,
    /// Gatekeeper admission budget.
    pub gk_bandwidth: u32,
    /// How long each connected call actually sends voice frames before
    /// the driver mutes both ends (keeps the event count O(calls), not
    /// O(calls x holding time), while still sampling RTP quality).
    pub voice_sample_ms: u64,
    /// Which event kernel the shard's network runs on. Both kernels
    /// produce identical fingerprints; the heap survives as the
    /// differential oracle for the default timer wheel.
    pub kernel: Kernel,
    /// Deterministic fault schedule for this run; the all-off default
    /// compiles to an empty plan and leaves the shard byte-identical to
    /// a fault-free build of the same configuration.
    pub faults: FaultPlanConfig,
    /// Demand scenario; the flat default compiles to an empty demand
    /// plan and leaves the shard byte-identical to a scenario-free
    /// build of the same configuration.
    pub scenario: ScenarioConfig,
    /// Overload-control knobs threaded into the shard's serving-area
    /// nodes (VMSC paging throttle, gatekeeper ARJ shedding, SGSN PDP
    /// admission control). All-off by default.
    pub controls: OverloadControls,
    /// KPI snapshot cadence in simulated seconds; `0` turns the
    /// recorder off. Sampling reads counters the shard maintains
    /// anyway, so it never perturbs the event stream or fingerprint.
    pub snapshot_secs: u64,
}

/// What one shard hands back for merging.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Which shard produced this.
    pub shard_index: usize,
    /// Subscribers registered through the home VMSC after power-on.
    pub registered: usize,
    /// Simulation events the shard processed.
    pub events: u64,
    /// Simulated time when the shard drained.
    pub sim_end: SimTime,
    /// The shard network's counters and histograms, plus the driver's
    /// own `load.*` counters.
    pub stats: Stats,
    /// Cumulative KPI frames sampled at each cadence boundary, in time
    /// order (empty when the recorder is off).
    pub snapshots: Vec<SnapshotFrame>,
}

/// Driver-scheduled actions, totally ordered by `(time, sequence)`.
enum Action {
    Attempt {
        local: usize,
        arrival: Arrival,
    },
    Hangup {
        node: NodeId,
        peer: NodeId,
        local: usize,
        peer_local: Option<usize>,
        gen: u32,
    },
    Mute {
        a: NodeId,
        b: NodeId,
        local: usize,
        gen: u32,
    },
    Move {
        local: usize,
        cell: CellId,
    },
    /// Checks whether a dialed call actually survived to the talking
    /// phase; failures are attributed to the overlapping fault window
    /// (or the baseline) and trigger a backed-off redial.
    Probe {
        local: usize,
        peer_local: Option<usize>,
        arrival: Arrival,
        attempt_no: u32,
        orig_ms: u64,
        gen: u32,
    },
    /// A backed-off re-attempt of a call the probe found dead.
    Redial {
        local: usize,
        arrival: Arrival,
        attempt_no: u32,
        orig_ms: u64,
    },
    /// Impairment window `i` of the fault plan opens.
    FaultStart(usize),
    /// Impairment window `i` of the fault plan closes; recovery runs.
    FaultEnd(usize),
}

struct Subscriber {
    ms: NodeId,
    terminal: NodeId,
    msisdn: Msisdn,
    alias: Msisdn,
    /// Driver-side busy window: suppress attempts that land inside an
    /// earlier call (the generator models a handset, not a trunk).
    busy_until_us: u64,
    /// When the current busy window's call was dialed.
    call_started_us: u64,
    /// The far party of the current call, for driving both ends of a
    /// handed-off call's teardown.
    current_peer: Option<NodeId>,
    /// Destination shard of this subscriber's cross-shard trip, if any.
    cross_target: Option<usize>,
    /// Currently outside the home shard (attempts are suppressed).
    away: bool,
    /// Away *mid-call*: radio leg lives at the destination VMSC, the
    /// H.323 leg stays anchored here. The HLR record does not move.
    handed_off: bool,
    /// Return fell due while the handed-off call was still up; go home
    /// shortly after the hangup instead.
    pending_return: bool,
    /// Bumped whenever the driver abandons the subscriber's current
    /// call (probe failure); stale `Hangup`/`Mute`/`Probe` actions from
    /// the abandoned call carry the old value and are skipped.
    gen: u32,
}

/// An outbound (anchored) handoff leg: our subscriber, their radio.
struct AnchoredLeg {
    target_shard: usize,
    /// Local index of the anchored subscriber, so a trunk partition
    /// that kills the handoff dialogue can tear the right call down.
    local: usize,
}

/// Deterministic identity helpers shared with the rest of the crate.
pub fn imsi_for(global: usize) -> Imsi {
    Imsi::parse(&format!("466920{global:09}")).expect("generated IMSI is valid")
}

/// The subscriber's own E.164 number.
pub fn msisdn_for(global: usize) -> Msisdn {
    Msisdn::parse(&format!("88691{global:07}")).expect("generated MSISDN is valid")
}

/// The alias of the subscriber's paired wireline terminal.
pub fn alias_for(global: usize) -> Msisdn {
    Msisdn::parse(&format!("88622{global:07}")).expect("generated alias is valid")
}

/// The subscriber's global index recovered from a generated IMSI.
fn global_of(imsi: &Imsi) -> Option<usize> {
    imsi.digits().get(6..)?.parse().ok()
}

/// One shard mid-flight: built world, pending actions, cross-shard
/// bookkeeping. Drive it with [`Shard::run_epoch`] until
/// [`Shard::is_busy`] clears, then [`Shard::finish`].
pub struct Shard {
    cfg: ShardConfig,
    net: Network<Message>,
    events: u64,
    registered: usize,
    t0_us: u64,
    home_hlr: NodeId,
    home_cell: CellId,
    home_vmsc: NodeId,
    home_sgsn: NodeId,
    home_ggsn: NodeId,
    home_gk: NodeId,
    /// Healthy Gb/Gn qualities, restored when a degradation window ends.
    gb_quality: LinkQuality,
    gn_quality: LinkQuality,
    /// The compiled fault schedule this shard replays.
    plan: FaultPlan,
    /// The compiled demand curve, kept for peak-vs-steady attribution.
    demand: DemandPlan,
    trunk_gate: NodeId,
    radio_gate: NodeId,
    subs: Vec<Subscriber>,
    ms_index: HashMap<NodeId, usize>,
    /// Driver-side replay schedule, keyed by microseconds relative to
    /// `t0_us`. The wheel pops in `(time, push order)` just like the old
    /// `BinaryHeap<Sched>`, without the per-pop `O(log n)`.
    sched: CalendarWheel<Action>,
    next_call: u64,
    max_sched_us: u64,
    // Cross-shard state.
    anchored: HashMap<CallId, AnchoredLeg>,
    call_src: HashMap<CallId, usize>,
    visitor_conns: HashMap<usize, ConnRef>,
    conn_globals: HashMap<ConnRef, (usize, usize)>,
    next_visitor_conn: u32,
    pending_um: Vec<(NodeId, Dtap)>,
    pending_interrupt: HashMap<usize, u64>,
    /// Subscribers whose handed-off call a trunk partition tore down,
    /// keyed by local index → (peer shard, torn-at ms). Ordered so the
    /// heal-time re-route runs in a deterministic sequence.
    trunk_torn: BTreeMap<usize, (usize, u64)>,
    outbox: Vec<Envelope>,
    recorder: SnapshotRecorder,
}

impl Shard {
    /// Builds the shard's world and registers its population. The
    /// returned shard sits at its busy-hour t0, ready for epoch 0.
    pub fn new(cfg: &ShardConfig, plans: &[SubscriberPlan]) -> Shard {
        assert_eq!(plans.len(), cfg.subscribers, "one plan per subscriber");
        let seed =
            SimRng::derive(cfg.master_seed, STREAM_SHARD.wrapping_add(cfg.shard_index as u64))
                .next_u64();
        let mut net = Network::with_kernel(seed, cfg.kernel);
        net.set_trace_details(false);
        net.set_trace_capture(false);
        let mut events: u64 = 0;

        // The fault schedule is compiled up front from (config, seed,
        // shard): the driver replays it like any subscriber plan, so
        // fault timing never depends on threads or kernel choice.
        // Recovery guard timers only arm when the plan can actually
        // hurt — an empty plan keeps the event stream identical to a
        // fault-free run.
        let plan = compile_plan(
            &cfg.faults,
            cfg.master_seed,
            cfg.shard_index,
            cfg.population.window_secs,
        );
        // The demand curve is recompiled here (the engine already
        // compiled it to generate the subscriber plans — the function is
        // pure and cheap) for peak-vs-steady KPI attribution and drift
        // target resolution.
        let demand = compile_demand(
            &cfg.scenario,
            cfg.master_seed,
            cfg.shard_index,
            cfg.population.window_secs,
        );
        // Recovery/overload machinery arms only when something can hurt:
        // a fault plan, or an enabled overload control (whose retry
        // composition rides the same resilience guards).
        let resilience = !plan.is_empty() || cfg.controls.enabled();

        // Home serving area plus a neighbor for mobility. Shards are
        // separate networks, so every shard can reuse the same addressing.
        let mut home = VgprsZone::build(
            &mut net,
            VgprsZoneConfig {
                name: format!("s{}", cfg.shard_index),
                tch_capacity: cfg.tch_capacity,
                pdch_bps: cfg.pdch_bps,
                gk_bandwidth: cfg.gk_bandwidth,
                resilience,
                paging_rate_per_s: cfg.controls.paging_rate_per_s,
                gk_shed_utilization: cfg.controls.gk_shed_utilization,
                pdp_rate_per_s: cfg.controls.pdp_rate_per_s,
                ..VgprsZoneConfig::taiwan()
            },
        );
        let neighbor = VgprsZone::build(
            &mut net,
            VgprsZoneConfig {
                name: format!("s{}n", cfg.shard_index),
                lai: Lai::new(466, 92, 2),
                cell: CellId(2),
                msrn_prefix: "8869991".into(),
                pool: (Ipv4Addr::from_octets(10, 201, 0, 0), 16),
                gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 2, 0, 2), 1719),
                tch_capacity: cfg.tch_capacity,
                pdch_bps: cfg.pdch_bps,
                gk_bandwidth: cfg.gk_bandwidth,
                resilience,
                paging_rate_per_s: cfg.controls.paging_rate_per_s,
                gk_shed_utilization: cfg.controls.gk_shed_utilization,
                pdp_rate_per_s: cfg.controls.pdp_rate_per_s,
                ..VgprsZoneConfig::taiwan()
            },
        );
        // One operator, one HLR: the neighbor VLR resolves home IMSIs at
        // the home HLR, and the VMSCs are handoff peers in both directions.
        net.connect(neighbor.vlr, home.hlr, Interface::D, home.latency.ss7);
        net.node_mut::<Vlr>(neighbor.vlr)
            .expect("neighbor VLR")
            .add_hlr_route("466", home.hlr);
        net.connect(home.vmsc, neighbor.vmsc, Interface::E, home.latency.e);
        net.node_mut::<Vmsc>(home.vmsc)
            .expect("home VMSC")
            .add_neighbor_cell(neighbor.cell, neighbor.vmsc);
        net.node_mut::<Vmsc>(neighbor.vmsc)
            .expect("neighbor VMSC")
            .add_neighbor_cell(home.cell, home.vmsc);

        // The cross-shard gates: an E-trunk "neighbor VMSC" serving the
        // border cell, and the border cell's radio infrastructure.
        let trunk_gate = net.add_node(
            &format!("s{}.xgate-e", cfg.shard_index),
            TrunkGate::new(home.vmsc),
        );
        net.connect(trunk_gate, home.vmsc, Interface::E, home.latency.e);
        net.node_mut::<Vmsc>(home.vmsc)
            .expect("home VMSC")
            .add_neighbor_cell(BORDER_CELL, trunk_gate);
        let radio_gate = net.add_node(
            &format!("s{}.xgate-a", cfg.shard_index),
            RadioGate::new(home.vmsc),
        );
        net.connect(radio_gate, home.vmsc, Interface::A, home.latency.a);

        let mut subs = Vec::with_capacity(cfg.subscribers);
        let mut ms_index = HashMap::new();
        for (local, plan) in plans.iter().enumerate() {
            let g = plan.global_index;
            let msisdn = msisdn_for(g);
            let alias = alias_for(g);
            let ms = home.add_subscriber(
                &mut net,
                &format!("ms{g}"),
                imsi_for(g),
                0x5000 + g as u64,
                msisdn,
            );
            let terminal = home.add_terminal(&mut net, &format!("t{g}"), alias);
            let cross_target = plan
                .excursion
                .filter(|_| cfg.total_shards > 1)
                .and_then(|e| {
                    let draw = e.cross_shard?;
                    if e.drift {
                        // Crowd drift: the draw already names the
                        // destination epicenter shard (population takes
                        // it modulo the crowd's epicenter count).
                        let t = draw as usize;
                        (t < cfg.total_shards && t != cfg.shard_index).then_some(t)
                    } else {
                        // Ordinary trip: map the raw draw onto any other
                        // shard, skipping ourselves.
                        let d = (draw % (cfg.total_shards as u64 - 1)) as usize;
                        Some(if d >= cfg.shard_index { d + 1 } else { d })
                    }
                });
            if cross_target.is_some() {
                // Cross-shard movers camp on the border cell while away.
                net.connect(ms, radio_gate, Interface::Um, home.latency.um);
                let m = net.node_mut::<MobileStation>(ms).expect("new MS");
                m.add_neighbor(BORDER_CELL, radio_gate);
                m.add_neighbor(home.cell, home.bts);
            } else if plan.excursion.is_some() {
                // Movers can also camp on (and hand off to) the neighbor.
                net.connect(ms, neighbor.bts, Interface::Um, home.latency.um);
                net.node_mut::<Bts>(neighbor.bts)
                    .expect("neighbor BTS")
                    .register_ms(ms);
                let m = net.node_mut::<MobileStation>(ms).expect("new MS");
                m.add_neighbor(neighbor.cell, neighbor.bts);
                m.add_neighbor(home.cell, home.bts);
            }
            net.inject(
                SimDuration::from_millis(local as u64 * 7),
                ms,
                Message::Cmd(Command::PowerOn),
            );
            ms_index.insert(ms, local);
            subs.push(Subscriber {
                ms,
                terminal,
                msisdn,
                alias,
                busy_until_us: 0,
                call_started_us: 0,
                current_peer: None,
                cross_target,
                away: false,
                handed_off: false,
                pending_return: false,
                gen: 0,
            });
        }

        let outcome = net.run_until_quiescent();
        events += outcome.events;
        let registered = net
            .node::<Vmsc>(home.vmsc)
            .expect("home VMSC")
            .registered_count();

        // The busy-hour window starts once registration has settled.
        let t0_us = net.now().as_micros();
        let gb_quality = net
            .link_between(home.vmsc, home.sgsn)
            .expect("Gb link")
            .quality_from(home.vmsc);
        let gn_quality = net
            .link_between(home.sgsn, home.ggsn)
            .expect("Gn link")
            .quality_from(home.sgsn);
        let mut shard = Shard {
            cfg: cfg.clone(),
            net,
            events,
            registered,
            t0_us,
            home_hlr: home.hlr,
            home_cell: home.cell,
            home_vmsc: home.vmsc,
            home_sgsn: home.sgsn,
            home_ggsn: home.ggsn,
            home_gk: home.gk,
            gb_quality,
            gn_quality,
            plan,
            demand,
            trunk_gate,
            radio_gate,
            subs,
            ms_index,
            sched: CalendarWheel::new(),
            next_call: 1,
            max_sched_us: 0,
            anchored: HashMap::new(),
            call_src: HashMap::new(),
            visitor_conns: HashMap::new(),
            conn_globals: HashMap::new(),
            next_visitor_conn: 0,
            pending_um: Vec::new(),
            pending_interrupt: HashMap::new(),
            trunk_torn: BTreeMap::new(),
            outbox: Vec::new(),
            recorder: SnapshotRecorder::new(cfg.snapshot_secs),
        };
        for (local, plan) in plans.iter().enumerate() {
            for &arrival in &plan.arrivals {
                shard.push(arrival.at_ms, Action::Attempt { local, arrival });
            }
            if let Some(e) = plan.excursion {
                let out_cell = if shard.subs[local].cross_target.is_some() {
                    BORDER_CELL
                } else {
                    neighbor.cell
                };
                shard.push(e.out_ms, Action::Move { local, cell: out_cell });
                shard.push(e.back_ms, Action::Move { local, cell: home.cell });
            }
        }
        let windows: Vec<(u64, u64)> = shard
            .plan
            .events
            .iter()
            .map(|e| (e.at_ms, e.duration_ms))
            .collect();
        for (i, (at_ms, duration_ms)) in windows.into_iter().enumerate() {
            shard.push(at_ms, Action::FaultStart(i));
            shard.push(at_ms + duration_ms, Action::FaultEnd(i));
        }
        shard
    }

    fn push(&mut self, at_ms: u64, action: Action) {
        let at_us = at_ms * 1000;
        self.max_sched_us = self.max_sched_us.max(at_us);
        self.sched.push(SimTime::from_micros(at_us), action);
    }

    /// More work to do: scheduled actions, queued sim events, or
    /// downlink waiting for the next epoch.
    pub fn is_busy(&self) -> bool {
        !self.sched.is_empty() || self.net.pending_events() > 0 || !self.pending_um.is_empty()
    }

    /// An upper bound (in epochs) on how long this shard can legally
    /// stay busy: its last scheduled action plus a generous teardown
    /// allowance. The engine uses the fleet-wide maximum as a runaway
    /// backstop.
    pub fn max_epoch_hint(&self) -> u64 {
        const DRAIN_EPOCHS: u64 = 1_200; // 60 s of post-window teardown
        self.max_sched_us / (EPOCH_MS * 1000) + DRAIN_EPOCHS
    }

    /// Runs one lockstep epoch: delivers the barrier's inbox, replays
    /// the window's scheduled actions that fall inside the epoch, and
    /// returns the envelopes to exchange at the next barrier.
    pub fn run_epoch(&mut self, epoch: u64, inbox: Vec<(usize, Flit)>) -> Vec<Envelope> {
        let end_rel_us = (epoch + 1) * EPOCH_MS * 1000;

        // Downlink queued for local handsets — synthesized LU answers
        // from the previous epoch plus everything the barrier brought.
        let mut um_batch = std::mem::take(&mut self.pending_um);
        for (from_shard, flit) in inbox {
            self.deliver_flit(from_shard, flit, &mut um_batch);
        }
        if !um_batch.is_empty() {
            let gate = self
                .net
                .node_mut::<RadioGate>(self.radio_gate)
                .expect("radio gate");
            for (ms, dtap) in um_batch {
                gate.queue_um(ms, dtap);
            }
            // Kick: any internal non-A message flushes the queue.
            self.net.inject(
                SimDuration::ZERO,
                self.radio_gate,
                Message::Cmd(Command::StartTalking),
            );
        }

        // Bounded peek: the scheduler's cursor never overshoots the epoch,
        // so actions pushed for later epochs stay on the O(1) wheel path.
        let epoch_last = SimTime::from_micros(end_rel_us - 1);
        while self.sched.next_at_or_before(epoch_last).is_some() {
            let (at, action) = self.sched.pop().expect("peeked");
            let at_us = at.as_micros();
            let outcome = self.net.run_until(SimTime::from_micros(self.t0_us + at_us));
            self.events += outcome.events;
            self.handle_action(at_us, action);
        }
        let outcome = self
            .net
            .run_until(SimTime::from_micros(self.t0_us + end_rel_us));
        self.events += outcome.events;

        self.drain_gates();
        // Sample after the epoch fully settles (gates drained) so a
        // frame reflects every event up to its boundary. Epoch ends are
        // the same simulated instants on every shard, thread count and
        // kernel, so the series inherits the run's determinism.
        self.recorder.observe(end_rel_us / 1000, self.net.stats());
        std::mem::take(&mut self.outbox)
    }

    fn handle_action(&mut self, at_us: u64, action: Action) {
        match action {
            Action::Attempt { local, arrival } => {
                self.attempt(local, at_us, arrival, 0, at_us / 1000)
            }
            Action::Redial {
                local,
                arrival,
                attempt_no,
                orig_ms,
            } => {
                self.net.stats_mut().count("load.redial_attempts");
                self.attempt(local, at_us, arrival, attempt_no, orig_ms);
            }
            Action::Probe {
                local,
                peer_local,
                arrival,
                attempt_no,
                orig_ms,
                gen,
            } => self.probe(local, at_us, peer_local, arrival, attempt_no, orig_ms, gen),
            Action::FaultStart(i) => self.fault_start(i),
            Action::FaultEnd(i) => self.fault_end(i),
            Action::Hangup {
                node,
                peer,
                local,
                peer_local,
                gen,
            } => {
                if self.subs[local].gen != gen {
                    // The probe already abandoned this call; its hangup
                    // must not tear down a redialed successor.
                    self.net.stats_mut().count("load.stale_actions");
                    return;
                }
                self.net
                    .inject(SimDuration::ZERO, node, Message::Cmd(Command::Hangup));
                let crossed = self.subs[local].handed_off
                    || peer_local.is_some_and(|p| self.subs[p].handed_off);
                if crossed {
                    // The anchor's release toward the old radio channel
                    // never reaches a handset that left the cell; drive
                    // the far end explicitly so both legs tear down.
                    self.net
                        .inject(SimDuration::ZERO, peer, Message::Cmd(Command::Hangup));
                    self.net.stats_mut().count("load.handoff_teardowns");
                }
                for l in [Some(local), peer_local].into_iter().flatten() {
                    self.subs[l].current_peer = None;
                    self.pending_interrupt.remove(&l);
                    if self.subs[l].pending_return {
                        self.subs[l].pending_return = false;
                        self.push(
                            at_us / 1000 + RETURN_DELAY_MS,
                            Action::Move {
                                local: l,
                                cell: self.home_cell,
                            },
                        );
                    }
                }
            }
            Action::Mute { a, b, local, gen } => {
                if self.subs[local].gen != gen {
                    self.net.stats_mut().count("load.stale_actions");
                    return;
                }
                self.net
                    .inject(SimDuration::ZERO, a, Message::Cmd(Command::StopTalking));
                self.net
                    .inject(SimDuration::ZERO, b, Message::Cmd(Command::StopTalking));
            }
            Action::Move { local, cell } => {
                if cell == BORDER_CELL {
                    self.cross_out(local, at_us);
                } else if self.subs[local].away {
                    self.cross_back(local, at_us);
                } else {
                    self.net.stats_mut().count("load.moves");
                    self.net.inject(
                        SimDuration::ZERO,
                        self.subs[local].ms,
                        Message::Cmd(Command::MoveToCell { cell }),
                    );
                }
            }
        }
    }

    fn attempt(&mut self, local: usize, at_us: u64, arrival: Arrival, attempt_no: u32, orig_ms: u64) {
        self.net.stats_mut().count("load.attempts");
        if self.subs[local].away {
            self.net.stats_mut().count("load.away_skipped");
            return;
        }
        if at_us < self.subs[local].busy_until_us {
            self.net.stats_mut().count("load.busy_skipped");
            return;
        }
        let (orig, called, peer, peer_local) = match arrival.kind {
            CallKind::MoToTerminal => (
                self.subs[local].ms,
                self.subs[local].alias,
                self.subs[local].terminal,
                None,
            ),
            CallKind::MtFromTerminal => (
                self.subs[local].terminal,
                self.subs[local].msisdn,
                self.subs[local].ms,
                None,
            ),
            CallKind::MsToMs => {
                if self.cfg.subscribers < 2 {
                    self.net.stats_mut().count("load.no_peer_available");
                    return;
                }
                let mut p = (arrival.peer_draw % (self.cfg.subscribers as u64 - 1)) as usize;
                if p >= local {
                    p += 1;
                }
                if self.subs[p].away {
                    self.net.stats_mut().count("load.away_skipped");
                    return;
                }
                if at_us < self.subs[p].busy_until_us {
                    self.net.stats_mut().count("load.busy_skipped");
                    return;
                }
                self.subs[p].busy_until_us = at_us + arrival.hold_ms * 1000;
                self.subs[p].call_started_us = at_us;
                self.subs[p].current_peer = Some(self.subs[local].ms);
                (self.subs[local].ms, self.subs[p].msisdn, self.subs[p].ms, Some(p))
            }
        };
        self.subs[local].busy_until_us = at_us + arrival.hold_ms * 1000;
        self.subs[local].call_started_us = at_us;
        // The far party as seen from the subscriber's handset (for MT
        // calls the originating terminal, not the handset itself).
        self.subs[local].current_peer = Some(if orig == self.subs[local].ms { peer } else { orig });
        if !self.demand.is_flat() {
            // Attribute the dialed attempt to the shock's peak or the
            // steady state so blocking can be reported for each regime.
            // Counted here, past the away/busy skips, so the regime
            // denominators cover exactly the calls the drop probe sees.
            let regime = if self.demand.in_peak(at_us / 1000) { "peak" } else { "steady" };
            self.net.stats_mut().count(&format!("load.attempts_{regime}"));
        }
        let call = CallId((self.cfg.base_index as u64) << 32 | self.next_call);
        self.next_call += 1;
        self.net.inject(
            SimDuration::ZERO,
            orig,
            Message::Cmd(Command::Dial { call, called }),
        );
        let at_ms = at_us / 1000;
        let gen = self.subs[local].gen;
        let mute_ms = CONNECT_GRACE_MS + self.cfg.voice_sample_ms;
        if mute_ms < arrival.hold_ms {
            self.push(
                at_ms + mute_ms,
                Action::Mute {
                    a: orig,
                    b: peer,
                    local,
                    gen,
                },
            );
        }
        self.push(
            at_ms + arrival.hold_ms,
            Action::Hangup {
                node: orig,
                peer,
                local,
                peer_local,
                gen,
            },
        );
        // Probe the call once it should be in the talking phase. Calls
        // shorter than the probe point are never probed (their teardown
        // would race the check).
        let probe_ms = CONNECT_GRACE_MS + PROBE_DELAY_MS;
        if probe_ms + 500 < arrival.hold_ms {
            self.push(
                at_ms + probe_ms,
                Action::Probe {
                    local,
                    peer_local,
                    arrival,
                    attempt_no,
                    orig_ms,
                    gen,
                },
            );
        }
    }

    /// Verifies that a dialed call reached the talking phase. A dead
    /// call is attributed to whichever fault window overlapped its
    /// setup (or the baseline), both parties are freed, and the caller
    /// redials with exponential back-off and seeded jitter.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &mut self,
        local: usize,
        at_us: u64,
        peer_local: Option<usize>,
        arrival: Arrival,
        attempt_no: u32,
        orig_ms: u64,
        gen: u32,
    ) {
        if self.subs[local].gen != gen || self.subs[local].away {
            return;
        }
        let state = self
            .net
            .node::<MobileStation>(self.subs[local].ms)
            .expect("subscriber MS")
            .state();
        let now_ms = at_us / 1000;
        if state == MsState::Active {
            if attempt_no > 0 {
                // Time from the original (failed) dial to a verified
                // live call on a later attempt.
                self.net
                    .stats_mut()
                    .observe("load.redial_recovery_ms", (now_ms - orig_ms) as f64);
            }
            return;
        }
        let dialed_ms = now_ms - (CONNECT_GRACE_MS + PROBE_DELAY_MS);
        let class = FaultClass::ALL
            .into_iter()
            .find(|&c| self.plan.overlaps(c, dialed_ms, now_ms));
        let key = class.map_or("baseline", FaultClass::key);
        self.net.stats_mut().count(&format!("load.dropped_{key}"));
        if !self.demand.is_flat() {
            let regime = if self.demand.in_peak(dialed_ms) { "peak" } else { "steady" };
            self.net.stats_mut().count(&format!("load.dropped_{regime}"));
        }
        // Free both parties and invalidate the dead call's remaining
        // scheduled actions.
        self.subs[local].gen = self.subs[local].gen.wrapping_add(1);
        self.subs[local].busy_until_us = at_us;
        self.subs[local].current_peer = None;
        if let Some(p) = peer_local {
            self.subs[p].busy_until_us = at_us;
            self.subs[p].current_peer = None;
        }
        if attempt_no >= MAX_REDIALS {
            self.net.stats_mut().count("load.redials_exhausted");
            return;
        }
        let global = (self.cfg.base_index + local) as u64;
        let jitter = SimRng::derive(
            self.cfg.master_seed,
            STREAM_REDIAL ^ (global << 8) ^ u64::from(attempt_no),
        )
        .range(0, REDIAL_JITTER_MS);
        let back_ms = (REDIAL_BASE_MS << attempt_no) + jitter;
        self.push(
            now_ms + back_ms,
            Action::Redial {
                local,
                arrival,
                attempt_no: attempt_no + 1,
                orig_ms,
            },
        );
    }

    /// The home-zone endpoints and healthy quality of a fault-plan link.
    fn fault_link(&self, link: LinkSel) -> (NodeId, NodeId, LinkQuality) {
        match link {
            LinkSel::Gb => (self.home_vmsc, self.home_sgsn, self.gb_quality),
            LinkSel::Gn => (self.home_sgsn, self.home_ggsn, self.gn_quality),
        }
    }

    /// The home-zone node a fault-plan selector names.
    fn fault_node(&self, node: NodeSel) -> NodeId {
        match node {
            NodeSel::Sgsn => self.home_sgsn,
            NodeSel::Ggsn => self.home_ggsn,
            NodeSel::Gatekeeper => self.home_gk,
            NodeSel::Vmsc => self.home_vmsc,
        }
    }

    /// Opens impairment window `i` of the fault plan.
    fn fault_start(&mut self, i: usize) {
        let ev = self.plan.events[i];
        let key = ev.kind.class().key();
        self.net.stats_mut().count("load.faults_injected");
        self.net
            .stats_mut()
            .count_by(&format!("load.unavailability_ms_{key}"), ev.duration_ms);
        match ev.kind {
            FaultKind::DegradeLink {
                link,
                added_latency,
                loss,
                bandwidth_bps,
            } => {
                let (a, b, base) = self.fault_link(link);
                let degraded = LinkQuality {
                    latency: base.latency + added_latency,
                    jitter: base.jitter,
                    loss,
                    bandwidth_bps: Some(bandwidth_bps),
                };
                self.net.set_link_quality(a, b, degraded);
            }
            FaultKind::Crash { node } => {
                let id = self.fault_node(node);
                self.net
                    .inject(SimDuration::ZERO, id, Message::Cmd(Command::Crash));
            }
            FaultKind::Blackhole { node } => {
                let id = self.fault_node(node);
                self.net
                    .inject(SimDuration::ZERO, id, Message::Cmd(Command::Blackhole));
            }
        }
    }

    /// Closes impairment window `i` and drives recovery: links get
    /// their healthy quality back, restarted peers trigger a VMSC
    /// resync, and a VMSC cold start power-cycles the home population
    /// so every handset re-registers.
    fn fault_end(&mut self, i: usize) {
        let ev = self.plan.events[i];
        match ev.kind {
            FaultKind::DegradeLink { link, .. } => {
                let (a, b, base) = self.fault_link(link);
                self.net.set_link_quality(a, b, base);
            }
            FaultKind::Blackhole { node } => {
                let id = self.fault_node(node);
                self.net
                    .inject(SimDuration::ZERO, id, Message::Cmd(Command::Restore));
            }
            FaultKind::Crash { node } => {
                let id = self.fault_node(node);
                self.net
                    .inject(SimDuration::ZERO, id, Message::Cmd(Command::Restore));
                if node == NodeSel::Vmsc {
                    // The VMSC cold-started with an empty MS table;
                    // power-cycle the home population (staggered like
                    // boot) so every handset re-runs location update,
                    // PDP activation and RAS registration.
                    for local in 0..self.subs.len() {
                        if self.subs[local].away {
                            continue;
                        }
                        let ms = self.subs[local].ms;
                        let delay = SimDuration::from_millis(1 + local as u64 * 7);
                        self.net
                            .inject(delay, ms, Message::Cmd(Command::PowerOff));
                        self.net.inject(
                            delay + SimDuration::from_millis(3),
                            ms,
                            Message::Cmd(Command::PowerOn),
                        );
                        self.net.stats_mut().count("load.fault_recycles");
                    }
                } else {
                    // A backbone peer restarted with empty tables: the
                    // VMSC re-attaches every subscriber to rebuild MM
                    // state, PDP contexts and gatekeeper registrations.
                    self.net.inject(
                        SimDuration::from_millis(RESYNC_DELAY_MS),
                        self.home_vmsc,
                        Message::Cmd(Command::Resync),
                    );
                }
            }
        }
    }

    /// The subscriber's excursion leaves the shard. Mid-call (and only
    /// when the call is settled and has time left) this becomes an
    /// inter-VMSC handoff; idle it transfers HLR ownership.
    fn cross_out(&mut self, local: usize, at_us: u64) {
        let Some(target) = self.subs[local].cross_target else {
            return;
        };
        let global = self.cfg.base_index + local;
        let busy = at_us < self.subs[local].busy_until_us;
        if busy {
            let settled_us = self.subs[local].call_started_us
                + (CONNECT_GRACE_MS + self.cfg.voice_sample_ms + 500) * 1000;
            if at_us <= settled_us || at_us + HANDOFF_TAIL_US >= self.subs[local].busy_until_us {
                self.net.stats_mut().count("load.cross_skipped");
                return;
            }
            self.net.stats_mut().count("load.moves");
            self.subs[local].away = true;
            self.subs[local].handed_off = true;
            // Re-open voice on both legs so the handoff interrupts a
            // live stream, then mute again once the gap is sampled.
            let ms = self.subs[local].ms;
            let peer = self.subs[local].current_peer.expect("mid-call peer");
            self.net
                .inject(SimDuration::ZERO, ms, Message::Cmd(Command::StartTalking));
            self.net
                .inject(SimDuration::ZERO, peer, Message::Cmd(Command::StartTalking));
            let mute_at_ms = at_us / 1000 + HANDOFF_VOICE_MS;
            if mute_at_ms * 1000 + 500_000 < self.subs[local].busy_until_us {
                let gen = self.subs[local].gen;
                self.push(
                    mute_at_ms,
                    Action::Mute {
                        a: ms,
                        b: peer,
                        local,
                        gen,
                    },
                );
            }
            self.net.inject(
                SimDuration::ZERO,
                ms,
                Message::Cmd(Command::MoveToCell { cell: BORDER_CELL }),
            );
        } else {
            if self.subs[local].busy_until_us > 0
                && at_us < self.subs[local].busy_until_us + POST_CALL_SETTLE_US
            {
                self.net.stats_mut().count("load.cross_skipped");
                return;
            }
            self.net.stats_mut().count("load.moves");
            self.net.stats_mut().count("load.cross_idle");
            self.subs[local].away = true;
            // The destination shard's HLR takes the record; ours drops
            // it (GSM cancel-location toward the serving VLR included).
            self.outbox.push(Envelope {
                to_shard: target,
                flit: Flit::Arrive { global },
            });
            self.net.inject(
                SimDuration::ZERO,
                self.home_hlr,
                Message::Map(MapMessage::CancelLocation {
                    imsi: imsi_for(global),
                }),
            );
            self.net.inject(
                SimDuration::ZERO,
                self.subs[local].ms,
                Message::Cmd(Command::MoveToCell { cell: BORDER_CELL }),
            );
        }
    }

    /// The subscriber comes home: re-camp on the home cell, and for
    /// idle-mode trips reclaim the HLR record from the host shard.
    fn cross_back(&mut self, local: usize, at_us: u64) {
        let global = self.cfg.base_index + local;
        if self.subs[local].handed_off {
            if at_us < self.subs[local].busy_until_us + POST_CALL_SETTLE_US {
                // Still on the handed-off call; return after it ends.
                self.subs[local].pending_return = true;
                return;
            }
            self.subs[local].away = false;
            self.subs[local].handed_off = false;
        } else {
            let target = self.subs[local].cross_target.expect("cross mover");
            self.subs[local].away = false;
            // Reclaim ownership before the handset's location update
            // arrives, mirroring the HLR update of a real return.
            self.net
                .node_mut::<Hlr>(self.home_hlr)
                .expect("home HLR")
                .provision(
                    imsi_for(global),
                    0x5000 + global as u64,
                    SubscriberProfile::full(msisdn_for(global)),
                );
            self.outbox.push(Envelope {
                to_shard: target,
                flit: Flit::Depart { global },
            });
        }
        self.net.stats_mut().count("load.cross_back");
        self.net.inject(
            SimDuration::ZERO,
            self.subs[local].ms,
            Message::Cmd(Command::MoveToCell {
                cell: self.home_cell,
            }),
        );
    }

    /// Delivers one barrier flit into the simulation.
    fn deliver_flit(&mut self, from_shard: usize, flit: Flit, um_batch: &mut Vec<(NodeId, Dtap)>) {
        match flit {
            Flit::Map(m) => {
                if let MapMessage::PrepareHandover { call, .. } = &m {
                    // Remember who anchors this visitor call so replies
                    // and uplink voice can be routed back.
                    self.call_src.insert(*call, from_shard);
                }
                self.net
                    .inject(SimDuration::ZERO, self.trunk_gate, Message::Map(m));
            }
            Flit::Trunk {
                cic,
                call,
                seq,
                origin_off_us,
            } => {
                self.net.inject(
                    SimDuration::ZERO,
                    self.trunk_gate,
                    Message::TrunkVoice {
                        cic,
                        call,
                        seq,
                        origin_us: self.t0_us + origin_off_us,
                    },
                );
            }
            Flit::UmUp { global, dtap } => match dtap {
                Dtap::HandoverComplete { .. } => {
                    // The visitor arrived on our border cell: allocate
                    // the radio-leg connection its A-interface will use.
                    let conn = ConnRef(VISITOR_CONN_BASE | self.next_visitor_conn);
                    self.next_visitor_conn += 1;
                    self.visitor_conns.insert(global, conn);
                    self.conn_globals.insert(conn, (global, from_shard));
                    self.net.inject(
                        SimDuration::ZERO,
                        self.radio_gate,
                        Message::A { conn, dtap },
                    );
                }
                dtap => {
                    if let Some(&conn) = self.visitor_conns.get(&global) {
                        let dtap = self.rebase_in(dtap);
                        self.net.inject(
                            SimDuration::ZERO,
                            self.radio_gate,
                            Message::A { conn, dtap },
                        );
                    } else {
                        self.net.stats_mut().count("load.cross_dropped");
                    }
                }
            },
            Flit::ADown { global, dtap } => {
                let local = global - self.cfg.base_index;
                let dtap = self.rebase_in(dtap);
                if matches!(dtap, Dtap::VoiceFrame { .. }) {
                    if let Some(start_us) = self.pending_interrupt.remove(&local) {
                        // First downlink voice since the handset left its
                        // old channel: the handoff interruption gap.
                        let gap_ms =
                            self.net.now().as_micros().saturating_sub(start_us) as f64 / 1000.0;
                        self.net
                            .stats_mut()
                            .observe("load.handoff_interruption_ms", gap_ms);
                    }
                }
                um_batch.push((self.subs[local].ms, dtap));
            }
            Flit::Arrive { global } => {
                self.net.stats_mut().count("load.visitors_hosted");
                self.net
                    .node_mut::<Hlr>(self.home_hlr)
                    .expect("home HLR")
                    .provision(
                        imsi_for(global),
                        0x5000 + global as u64,
                        SubscriberProfile::full(msisdn_for(global)),
                    );
            }
            Flit::Depart { global } => {
                self.net.inject(
                    SimDuration::ZERO,
                    self.home_hlr,
                    Message::Map(MapMessage::CancelLocation {
                        imsi: imsi_for(global),
                    }),
                );
            }
            Flit::TrunkExpired {
                peer,
                call,
                global,
                kind,
            } => self.trunk_expired(peer, call, global, kind),
            Flit::TrunkHeal { peer } => self.trunk_heal(peer),
        }
    }

    /// The trunk fabric gave up retransmitting one of our flits toward
    /// `peer` (a partition or sustained loss outlived the back-off
    /// budget). Resolve the casualty the way the anchor VMSC's
    /// supervision timers would: voice loses frames, a dead handoff
    /// dialogue tears the call down with a Q.850 cause, a dead HLR
    /// ownership transfer reverts the move.
    fn trunk_expired(
        &mut self,
        peer: usize,
        call: Option<CallId>,
        global: Option<usize>,
        kind: ExpiredKind,
    ) {
        let now_us = self.net.now().as_micros().saturating_sub(self.t0_us);
        match kind {
            ExpiredKind::Voice => {
                // The far end never hears these frames; the scheduled
                // hangup (or the probe) still cleans the call up, so
                // only attribute the loss to the trunk class.
                self.net.stats_mut().count("load.trunk_frame_drops");
            }
            ExpiredKind::Handoff => {
                // Who was mid-ladder? The anchor side finds the call in
                // its anchored map (or the mover via its global index);
                // the host side only knows the visitor's global.
                let local = call
                    .and_then(|c| self.anchored.remove(&c).map(|leg| leg.local))
                    .or_else(|| {
                        global
                            .map(|g| g.wrapping_sub(self.cfg.base_index))
                            .filter(|&l| l < self.subs.len())
                    });
                if let Some(local) = local {
                    self.teardown_torn(local, peer, now_us);
                } else if let Some(g) = global {
                    // An expired uplink for a visitor we host: abandon
                    // the radio leg; the anchor side supervises the call.
                    if let Some(conn) = self.visitor_conns.remove(&g) {
                        self.conn_globals.remove(&conn);
                        self.net.stats_mut().count("load.trunk_visitor_drops");
                    } else {
                        self.net.stats_mut().count("load.trunk_signal_drops");
                    }
                } else if let Some(c) = call {
                    // Handoff dialogue we relayed for a visitor call:
                    // forget the route; the anchor shard's supervision
                    // owns the teardown.
                    self.call_src.remove(&c);
                    self.net.stats_mut().count("load.trunk_signal_drops");
                } else {
                    self.net.stats_mut().count("load.trunk_signal_drops");
                }
            }
            ExpiredKind::Mobility => {
                // An idle-mode HLR ownership transfer died on the
                // trunk: revert the move so exactly one shard owns the
                // record again (re-provisioning is idempotent when the
                // expired flit was the return-trip cancel).
                let Some(local) = global
                    .map(|g| g.wrapping_sub(self.cfg.base_index))
                    .filter(|&l| l < self.subs.len())
                else {
                    self.net.stats_mut().count("load.trunk_signal_drops");
                    return;
                };
                let g = self.cfg.base_index + local;
                self.net.stats_mut().count("load.trunk_mobility_reverts");
                self.subs[local].away = false;
                self.subs[local].handed_off = false;
                self.net
                    .node_mut::<Hlr>(self.home_hlr)
                    .expect("home HLR")
                    .provision(
                        imsi_for(g),
                        0x5000 + g as u64,
                        SubscriberProfile::full(msisdn_for(g)),
                    );
                self.net.inject(
                    SimDuration::ZERO,
                    self.subs[local].ms,
                    Message::Cmd(Command::MoveToCell {
                        cell: self.home_cell,
                    }),
                );
            }
            ExpiredKind::Signal => {
                self.net.stats_mut().count("load.trunk_signal_drops");
            }
        }
    }

    /// Supervised teardown of a handed-off call whose trunk leg a
    /// partition killed: both ends hang up, the dead call's remaining
    /// scheduled actions are invalidated, and the stranded mover is
    /// remembered so the heal can re-route it to its home anchor.
    fn teardown_torn(&mut self, local: usize, peer: usize, now_us: u64) {
        self.net.stats_mut().count("load.trunk_handoff_drops");
        let cause = Cause::RecoveryOnTimerExpiry;
        self.net
            .stats_mut()
            .count(&format!("load.trunk_q850_{}", cause.q850_value()));
        let ms = self.subs[local].ms;
        let peer_node = self.subs[local].current_peer;
        self.subs[local].gen = self.subs[local].gen.wrapping_add(1);
        self.subs[local].busy_until_us = now_us;
        self.subs[local].current_peer = None;
        self.subs[local].pending_return = false;
        self.pending_interrupt.remove(&local);
        self.net
            .inject(SimDuration::ZERO, ms, Message::Cmd(Command::Hangup));
        if let Some(p) = peer_node {
            // The release toward the departed radio channel never
            // reaches the far handset; drive it down explicitly, like
            // the crossed-leg branch of a normal handoff hangup.
            self.net
                .inject(SimDuration::ZERO, p, Message::Cmd(Command::Hangup));
        }
        // Stranded at the far cell until the partition heals (or the
        // natural return excursion brings the subscriber home first).
        self.trunk_torn.insert(local, (peer, now_us / 1000));
    }

    /// A trunk partition toward `peer` healed: re-route every
    /// subscriber it stranded back onto the home anchor, in local-index
    /// order so the recovery sequence is deterministic.
    fn trunk_heal(&mut self, peer: usize) {
        let now_ms = self.net.now().as_micros().saturating_sub(self.t0_us) / 1000;
        let torn: Vec<(usize, u64)> = self
            .trunk_torn
            .iter()
            .filter(|&(_, &(p, _))| p == peer)
            .map(|(&l, &(_, at))| (l, at))
            .collect();
        for (local, torn_ms) in torn {
            self.trunk_torn.remove(&local);
            self.net.stats_mut().count("load.trunk_reroutes");
            self.net
                .stats_mut()
                .observe("load.heal_recovery_ms", now_ms.saturating_sub(torn_ms) as f64);
            self.subs[local].away = false;
            self.subs[local].handed_off = false;
            self.subs[local].pending_return = false;
            self.net.inject(
                SimDuration::ZERO,
                self.subs[local].ms,
                Message::Cmd(Command::MoveToCell {
                    cell: self.home_cell,
                }),
            );
        }
    }

    /// Harvests the epoch's outbound cross-shard traffic from the gates.
    fn drain_gates(&mut self) {
        let captured = self
            .net
            .node_mut::<TrunkGate>(self.trunk_gate)
            .expect("trunk gate")
            .take_captured();
        for msg in captured {
            match msg {
                Message::Map(m) => {
                    let to_shard = match &m {
                        MapMessage::PrepareHandover { call, imsi, .. } => {
                            let Some(local) = global_of(imsi)
                                .map(|g| g - self.cfg.base_index)
                                .filter(|&l| l < self.subs.len())
                            else {
                                self.net.stats_mut().count("load.cross_unroutable");
                                continue;
                            };
                            let Some(target) = self.subs[local].cross_target else {
                                self.net.stats_mut().count("load.cross_unroutable");
                                continue;
                            };
                            self.anchored.insert(
                                *call,
                                AnchoredLeg {
                                    target_shard: target,
                                    local,
                                },
                            );
                            self.net.stats_mut().count("load.handoff_attempts");
                            target
                        }
                        MapMessage::SendEndSignalAck { call } => {
                            let Some(leg) = self.anchored.get(call) else {
                                self.net.stats_mut().count("load.cross_unroutable");
                                continue;
                            };
                            self.net.stats_mut().count("load.handoff_success");
                            leg.target_shard
                        }
                        MapMessage::PrepareHandoverAck { call, .. }
                        | MapMessage::SendEndSignal { call } => {
                            let Some(&src) = self.call_src.get(call) else {
                                self.net.stats_mut().count("load.cross_unroutable");
                                continue;
                            };
                            src
                        }
                        _ => {
                            self.net.stats_mut().count("load.cross_unroutable");
                            continue;
                        }
                    };
                    self.outbox.push(Envelope {
                        to_shard,
                        flit: Flit::Map(m),
                    });
                }
                Message::TrunkVoice {
                    cic,
                    call,
                    seq,
                    origin_us,
                } => {
                    // Anchor → target (our subscriber's downlink) or
                    // target → anchor (a visitor's uplink).
                    let to_shard = self
                        .anchored
                        .get(&call)
                        .map(|leg| leg.target_shard)
                        .or_else(|| self.call_src.get(&call).copied());
                    let Some(to_shard) = to_shard else {
                        self.net.stats_mut().count("load.cross_dropped");
                        continue;
                    };
                    self.outbox.push(Envelope {
                        to_shard,
                        flit: Flit::Trunk {
                            cic,
                            call,
                            seq,
                            origin_off_us: origin_us.saturating_sub(self.t0_us),
                        },
                    });
                }
                _ => self.net.stats_mut().count("load.cross_unroutable"),
            }
        }

        let ups = self
            .net
            .node_mut::<RadioGate>(self.radio_gate)
            .expect("radio gate")
            .take_um_up();
        for (ms, dtap, at_us) in ups {
            let Some(&local) = self.ms_index.get(&ms) else {
                self.net.stats_mut().count("load.cross_dropped");
                continue;
            };
            let global = self.cfg.base_index + local;
            match dtap {
                Dtap::LocationUpdateRequest { .. } => {
                    // Idle-mode arrival at the border: the destination
                    // shard already owns the HLR record; answer the
                    // handset from here next epoch (one barrier's worth
                    // of inter-shard signaling latency).
                    self.pending_um
                        .push((ms, Dtap::LocationUpdateAccept { tmsi: None }));
                }
                dtap => {
                    if matches!(dtap, Dtap::HandoverComplete { .. }) {
                        // Radio silence starts when the handset reaches
                        // the border cell; ends at the first downlink
                        // voice frame relayed back from the target.
                        self.pending_interrupt.insert(local, at_us);
                    }
                    let Some(target) = self.subs[local].cross_target else {
                        self.net.stats_mut().count("load.cross_dropped");
                        continue;
                    };
                    let dtap = self.rebase_out(dtap);
                    self.outbox.push(Envelope {
                        to_shard: target,
                        flit: Flit::UmUp { global, dtap },
                    });
                }
            }
        }

        let downs = self
            .net
            .node_mut::<RadioGate>(self.radio_gate)
            .expect("radio gate")
            .take_a_down();
        for (conn, dtap) in downs {
            let Some(&(global, home_shard)) = self.conn_globals.get(&conn) else {
                self.net.stats_mut().count("load.cross_dropped");
                continue;
            };
            let released = matches!(dtap, Dtap::ChannelRelease);
            let dtap = self.rebase_out(dtap);
            self.outbox.push(Envelope {
                to_shard: home_shard,
                flit: Flit::ADown { global, dtap },
            });
            if released {
                // The target VMSC freed the visitor's radio leg.
                self.conn_globals.remove(&conn);
                self.visitor_conns.remove(&global);
            }
        }
    }

    /// Voice timestamps travel the mailbox relative to the sender's t0.
    fn rebase_out(&self, dtap: Dtap) -> Dtap {
        match dtap {
            Dtap::VoiceFrame {
                call,
                seq,
                origin_us,
            } => Dtap::VoiceFrame {
                call,
                seq,
                origin_us: origin_us.saturating_sub(self.t0_us),
            },
            d => d,
        }
    }

    fn rebase_in(&self, dtap: Dtap) -> Dtap {
        match dtap {
            Dtap::VoiceFrame {
                call,
                seq,
                origin_us,
            } => Dtap::VoiceFrame {
                call,
                seq,
                origin_us: self.t0_us + origin_us,
            },
            d => d,
        }
    }

    /// Seals the shard and hands back its evidence.
    pub fn finish(mut self) -> ShardReport {
        if self.is_busy() {
            // The engine stopped at its epoch cap with work remaining.
            self.net.stats_mut().count("load.drain_capped");
        }
        self.net
            .stats_mut()
            .count_by("load.registered", self.registered as u64);
        ShardReport {
            shard_index: self.cfg.shard_index,
            registered: self.registered,
            events: self.events,
            sim_end: self.net.now(),
            stats: self.net.stats().clone(),
            snapshots: self.recorder.into_frames(),
        }
    }
}

/// Builds the shard's world, replays its population slice to completion
/// and returns the merged evidence.
///
/// This is the standalone (no cross-shard exchange) path: envelopes a
/// lone shard addresses to other shards are discarded, so use it only
/// with `total_shards == 1` configurations; the engine drives
/// [`Shard::run_epoch`] with a real mailbox instead.
pub fn run_shard(cfg: &ShardConfig, plans: &[SubscriberPlan]) -> ShardReport {
    let mut shard = Shard::new(cfg, plans);
    let mut epoch = 0;
    while shard.is_busy() && epoch <= shard.max_epoch_hint() {
        shard.run_epoch(epoch, Vec::new());
        epoch += 1;
    }
    shard.finish()
}
