//! Offered-load sweep: find the knee where the deployment degrades.
//!
//! The sweep holds the world fixed (population, shards, radio capacity)
//! and scales the per-subscriber call-attempt rate. The *knee* is the
//! first load point whose p99 call-setup delay exceeds a multiple of
//! the lightest point's p99, or whose blocking crosses an absolute
//! floor — the same definition capacity planners use for Erlang tables.

use crate::engine::{run_load, LoadConfig};
use crate::report::LoadReport;

/// One measured point of the sweep.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Offered load multiplier applied to the base attempt rate.
    pub load_factor: f64,
    /// Calls per subscriber-hour actually offered.
    pub calls_per_sub_hour: f64,
    /// Offered traffic intensity in Erlangs (attempt rate x mean hold).
    pub offered_erlangs: f64,
    /// The full report for this point.
    pub report: LoadReport,
}

/// Result of [`capacity_sweep`].
#[derive(Clone, Debug)]
pub struct CapacitySweep {
    /// Every measured point, in increasing load order.
    pub points: Vec<CapacityPoint>,
    /// Index into `points` of the first degraded point, if any point
    /// degraded within the swept range.
    pub knee: Option<usize>,
}

/// Setup-delay degradation threshold: p99 beyond this multiple of the
/// lightest point's p99 marks the knee.
const KNEE_P99_FACTOR: f64 = 2.0;
/// Blocking floor that marks the knee regardless of latency.
const KNEE_BLOCKING: f64 = 0.01;

/// Runs `base` at each load multiplier and locates the knee.
pub fn capacity_sweep(base: &LoadConfig, load_factors: &[f64]) -> CapacitySweep {
    let mut points = Vec::with_capacity(load_factors.len());
    for &factor in load_factors {
        let mut cfg = base.clone();
        cfg.population.calls_per_sub_hour = base.population.calls_per_sub_hour * factor;
        let report = run_load(&cfg);
        points.push(CapacityPoint {
            load_factor: factor,
            calls_per_sub_hour: cfg.population.calls_per_sub_hour,
            offered_erlangs: cfg.population.calls_per_sub_hour / 3600.0
                * cfg.population.mean_hold_secs
                * cfg.subscribers as f64,
            report,
        });
    }
    let knee = find_knee(&points);
    CapacitySweep { points, knee }
}

fn find_knee(points: &[CapacityPoint]) -> Option<usize> {
    let base_p99 = points
        .iter()
        .map(|p| p.report.setup_delay().percentile(99.0))
        .find(|&p99| p99 > 0.0)?;
    points.iter().position(|p| {
        let p99 = p.report.setup_delay().percentile(99.0);
        p99 > base_p99 * KNEE_P99_FACTOR || p.report.blocking_rate() > KNEE_BLOCKING
    })
}
