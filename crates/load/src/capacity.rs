//! Offered-load sweep: find the knee where the deployment degrades.
//!
//! The sweep holds the world fixed (population, shards, radio capacity)
//! and scales the per-subscriber call-attempt rate. The *knee* is the
//! first load point whose p99 call-setup delay exceeds a multiple of
//! the lightest point's p99, or whose blocking crosses an absolute
//! floor — the same definition capacity planners use for Erlang tables.

use crate::engine::{run_load, LoadConfig};
use crate::report::LoadReport;

/// One measured point of the sweep.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Offered load multiplier applied to the base attempt rate.
    pub load_factor: f64,
    /// Calls per subscriber-hour actually offered.
    pub calls_per_sub_hour: f64,
    /// Offered traffic intensity in Erlangs (attempt rate x mean hold).
    pub offered_erlangs: f64,
    /// The full report for this point.
    pub report: LoadReport,
}

/// Result of [`capacity_sweep`].
#[derive(Clone, Debug)]
pub struct CapacitySweep {
    /// Every measured point, in increasing load order.
    pub points: Vec<CapacityPoint>,
    /// Index into `points` of the first degraded point, if any point
    /// degraded within the swept range.
    pub knee: Option<usize>,
}

/// Setup-delay degradation threshold: p99 beyond this multiple of the
/// lightest point's p99 marks the knee.
const KNEE_P99_FACTOR: f64 = 2.0;
/// Blocking floor that marks the knee regardless of latency.
const KNEE_BLOCKING: f64 = 0.01;

/// Runs `base` at each load multiplier and locates the knee.
pub fn capacity_sweep(base: &LoadConfig, load_factors: &[f64]) -> CapacitySweep {
    let mut points = Vec::with_capacity(load_factors.len());
    for &factor in load_factors {
        let mut cfg = base.clone();
        cfg.population.calls_per_sub_hour = base.population.calls_per_sub_hour * factor;
        let report = run_load(&cfg);
        points.push(CapacityPoint {
            load_factor: factor,
            calls_per_sub_hour: cfg.population.calls_per_sub_hour,
            offered_erlangs: cfg.population.calls_per_sub_hour / 3600.0
                * cfg.population.mean_hold_secs
                * cfg.subscribers as f64,
            report,
        });
    }
    let knee = find_knee(&points);
    CapacitySweep { points, knee }
}

fn find_knee(points: &[CapacityPoint]) -> Option<usize> {
    let base_p99 = points
        .iter()
        .map(|p| p.report.setup_delay().percentile(99.0))
        .find(|&p99| p99 > 0.0)?;
    points.iter().position(|p| {
        let p99 = p.report.setup_delay().percentile(99.0);
        p99 > base_p99 * KNEE_P99_FACTOR || p.report.blocking_rate() > KNEE_BLOCKING
    })
}

/// The refined knee located by [`capacity_knee`].
#[derive(Clone, Copy, Debug)]
pub struct KneeEstimate {
    /// Smallest probed load multiplier that degraded.
    pub load_factor: f64,
    /// Calls per subscriber-hour at that multiplier.
    pub calls_per_sub_hour: f64,
    /// Offered traffic intensity in Erlangs at that multiplier.
    pub offered_erlangs: f64,
    /// Largest probed multiplier that did *not* degrade — the knee lies
    /// in `(good_factor, load_factor]`.
    pub good_factor: f64,
}

/// Result of [`capacity_knee`]: every probe in the order it ran, plus
/// the bracketed estimate.
#[derive(Clone, Debug)]
pub struct KneeSearch {
    /// Every probed point, in probe order (doubling phase first, then
    /// the bisection refinements).
    pub probes: Vec<CapacityPoint>,
    /// The refined knee, or `None` if nothing degraded up to the cap.
    pub knee: Option<KneeEstimate>,
}

/// Locates the capacity knee by geometric bisection instead of a fixed
/// grid: double the offered load until a probe degrades (p99 setup
/// delay beyond [`KNEE_P99_FACTOR`]× the 1× point's, or blocking over
/// [`KNEE_BLOCKING`]), then split the bracket on the geometric mean for
/// `refine_steps` rounds. Each halving of bracket width costs one run,
/// so the knee lands within a factor of `2^(1/2^refine_steps)` for
/// `log2(max_factor) + refine_steps` runs — far fewer than sweeping the
/// same resolution. Deterministic: probe order and factors depend only
/// on the measurements, never on wall time.
pub fn capacity_knee(base: &LoadConfig, max_factor: f64, refine_steps: u32) -> KneeSearch {
    fn probe(base: &LoadConfig, probes: &mut Vec<CapacityPoint>, factor: f64) -> usize {
        let mut cfg = base.clone();
        cfg.population.calls_per_sub_hour = base.population.calls_per_sub_hour * factor;
        let report = run_load(&cfg);
        probes.push(CapacityPoint {
            load_factor: factor,
            calls_per_sub_hour: cfg.population.calls_per_sub_hour,
            offered_erlangs: cfg.population.calls_per_sub_hour / 3600.0
                * cfg.population.mean_hold_secs
                * cfg.subscribers as f64,
            report,
        });
        probes.len() - 1
    }
    let mut probes = Vec::new();

    // The 1x probe is the reference the latency criterion is judged
    // against, matching `capacity_sweep`'s lightest-point baseline.
    let baseline = probe(base, &mut probes, 1.0);
    let base_p99 = probes[baseline].report.setup_delay().percentile(99.0);
    let degraded = |p: &CapacityPoint| {
        let p99 = p.report.setup_delay().percentile(99.0);
        (base_p99 > 0.0 && p99 > base_p99 * KNEE_P99_FACTOR)
            || p.report.blocking_rate() > KNEE_BLOCKING
    };

    // Phase 1: doubling bracket. `lo` is the last good factor, `hi` the
    // first degraded one.
    let (mut lo, mut hi) = (1.0, None);
    if degraded(&probes[baseline]) {
        // Already over the knee at the base rate; report 1x directly.
        (lo, hi) = (0.0, Some(1.0));
    } else {
        let mut factor = 2.0;
        while factor <= max_factor {
            let i = probe(base, &mut probes, factor);
            if degraded(&probes[i]) {
                hi = Some(factor);
                break;
            }
            lo = factor;
            factor *= 2.0;
        }
    }
    let Some(mut hi) = hi else {
        return KneeSearch { probes, knee: None };
    };

    // Phase 2: geometric bisection inside (lo, hi]. Skipped when the
    // base rate itself degraded (lo == 0 has no geometric mean).
    if lo > 0.0 {
        for _ in 0..refine_steps {
            let mid = (lo * hi).sqrt();
            let i = probe(base, &mut probes, mid);
            if degraded(&probes[i]) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }

    let at = probes
        .iter()
        .position(|p| p.load_factor == hi)
        .expect("hi was probed");
    let knee = Some(KneeEstimate {
        load_factor: hi,
        calls_per_sub_hour: probes[at].calls_per_sub_hour,
        offered_erlangs: probes[at].offered_erlangs,
        good_factor: lo,
    });
    KneeSearch { probes, knee }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> LoadConfig {
        // Two traffic channels and a hot population: blocking crosses
        // the 1% knee threshold within a few doublings.
        let mut cfg = LoadConfig {
            subscribers: 32,
            shards: 1,
            threads: 1,
            seed: 7,
            tch_capacity: 2,
            ..LoadConfig::default()
        };
        cfg.population.window_secs = 30;
        cfg.population.calls_per_sub_hour = 30.0;
        cfg.population.mean_hold_secs = 20.0;
        cfg.population.mobility_fraction = 0.0;
        cfg
    }

    #[test]
    fn bisect_brackets_the_knee() {
        let search = capacity_knee(&tiny_base(), 16.0, 2);
        let knee = search.knee.expect("a 2-TCH cell must saturate by 16x");
        assert!(knee.load_factor > knee.good_factor);
        assert!(knee.load_factor <= 16.0);
        // Bracket width after 2 refinements of a doubling bracket.
        assert!(knee.load_factor / knee.good_factor.max(1.0) <= 2.0_f64.sqrt() + 1e-9);
        // The degraded point really is degraded.
        let at = search
            .probes
            .iter()
            .position(|p| p.load_factor == knee.load_factor)
            .unwrap();
        let base_p99 = search.probes[0].report.setup_delay().percentile(99.0);
        let p = &search.probes[at];
        assert!(
            p.report.blocking_rate() > KNEE_BLOCKING
                || p.report.setup_delay().percentile(99.0) > base_p99 * KNEE_P99_FACTOR
        );
    }

    #[test]
    fn no_knee_below_cap_returns_none() {
        // Cap the search below where this world degrades.
        let mut cfg = tiny_base();
        cfg.tch_capacity = 64;
        cfg.population.calls_per_sub_hour = 1.0;
        let search = capacity_knee(&cfg, 2.0, 1);
        assert!(search.knee.is_none());
        // Doubling phase still probed 1x and 2x.
        assert_eq!(search.probes.len(), 2);
    }
}
