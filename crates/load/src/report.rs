//! The merged, deterministic view of a load run.
//!
//! Shard reports are merged **in shard-index order**, so the combined
//! counters, histograms and the fingerprint derived from them are
//! independent of which thread finished first. Wall-clock figures
//! (events/second) are carried separately and explicitly excluded from
//! the fingerprint.

use std::time::Duration;

use vgprs_media::{EModel, Vocoder};
use vgprs_sim::{Histogram, Stats};

use crate::shard::ShardReport;

/// Jitter-buffer playout depth added to the measured network delay when
/// scoring MOS (same constant the C1 experiment uses).
const PLAYOUT_MS: f64 = 60.0;
/// Codec packetization interval.
const FRAME_MS: f64 = 20.0;

/// Everything a load run produces.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Population size across all shards.
    pub subscribers: usize,
    /// How many independent serving-area pairs were simulated.
    pub shards: usize,
    /// Worker threads used (does not affect any KPI).
    pub threads: usize,
    /// Merged counters and histograms from every shard.
    pub stats: Stats,
    /// Total simulation events processed.
    pub events: u64,
    /// Simulated seconds covered by the longest shard.
    pub sim_secs: f64,
    /// Wall-clock duration of the parallel run (not deterministic).
    pub wall: Duration,
}

impl LoadReport {
    /// Merges per-shard evidence; `reports` must be in shard order.
    pub fn merge(
        subscribers: usize,
        threads: usize,
        reports: &[ShardReport],
        wall: Duration,
    ) -> LoadReport {
        let mut stats = Stats::new();
        let mut events = 0;
        let mut sim_secs = 0f64;
        for r in reports {
            stats.merge(&r.stats);
            events += r.events;
            sim_secs = sim_secs.max(r.sim_end.as_secs_f64());
        }
        LoadReport {
            subscribers,
            shards: reports.len(),
            threads,
            stats,
            events,
            sim_secs,
            wall,
        }
    }

    fn counter(&self, name: &str) -> u64 {
        self.stats.counter(name)
    }

    /// Call attempts the generator issued.
    pub fn attempts(&self) -> u64 {
        self.counter("load.attempts") - self.counter("load.busy_skipped")
    }

    /// Merged end-to-end call-setup delay seen by the originators
    /// (mobile post-dial delay plus the wireline terminals' for MT).
    pub fn setup_delay(&self) -> Histogram {
        self.merged_histogram(&["ms.post_dial_delay_ms", "term.post_dial_delay_ms"])
    }

    /// Paging latency at the VMSC (page sent to page response).
    pub fn paging_delay(&self) -> Histogram {
        self.merged_histogram(&["vmsc.paging_response_ms"])
    }

    /// Voice PDP context activation time at the VMSC.
    pub fn pdp_activation(&self) -> Histogram {
        self.merged_histogram(&["vmsc.voice_pdp_activation_ms"])
    }

    /// One-way voice frame delay at both listener types.
    pub fn voice_delay(&self) -> Histogram {
        self.merged_histogram(&["ms.voice_e2e_ms", "term.voice_e2e_ms"])
    }

    /// Inter-VMSC (cross-shard) handoffs the anchor VMSCs initiated.
    pub fn handoff_attempts(&self) -> u64 {
        self.counter("load.handoff_attempts")
    }

    /// Handoffs that completed the full Figure 9 ladder (the anchor
    /// acknowledged `MAP Send End Signal`).
    pub fn handoff_successes(&self) -> u64 {
        self.counter("load.handoff_success")
    }

    /// Handoffs that started a MAP dialogue but never closed it — the
    /// call ended (or the window did) mid-ladder.
    pub fn handoff_drops(&self) -> u64 {
        self.handoff_attempts()
            .saturating_sub(self.handoff_successes())
    }

    /// Voice interruption during handoff: handover-complete on the
    /// target cell to the first downlink frame arriving there.
    pub fn handoff_interruption(&self) -> Histogram {
        self.merged_histogram(&["load.handoff_interruption_ms"])
    }

    /// Downlink frames that chased the subscriber to a cell it had
    /// already left (mid-handoff loss, discarded by the handset).
    pub fn handoff_frame_loss(&self) -> u64 {
        self.counter("ms.ignored_stale_cell")
    }

    /// Idle-mode HLR ownership moves between shards (each direction of
    /// a round trip counts once).
    pub fn hlr_relocations(&self) -> u64 {
        self.counter("load.hlr_relocations")
    }

    fn merged_histogram(&self, names: &[&str]) -> Histogram {
        let mut out = Histogram::new();
        for n in names {
            if let Some(h) = self.stats.histogram(n) {
                out.merge(h);
            }
        }
        out
    }

    /// Fraction of attempts refused a traffic channel at the cell.
    pub fn blocking_rate(&self) -> f64 {
        ratio(self.counter("bsc.tch_blocked"), self.attempts())
    }

    /// Fraction of attempts the H.323 side refused (gatekeeper
    /// bandwidth, unknown alias while roaming, VMSC admission).
    pub fn reject_rate(&self) -> f64 {
        let rejected = self.counter("gk.admission_rejected_bandwidth")
            + self.counter("gk.admission_rejected_unknown_alias")
            + self.counter("vmsc.admission_rejected");
        ratio(rejected, self.attempts())
    }

    /// Voice frame loss across both directions.
    pub fn frame_loss(&self) -> f64 {
        let sent = self.counter("ms.voice_frames_sent") + self.counter("term.rtp_sent");
        let received =
            self.counter("ms.voice_frames_received") + self.counter("term.rtp_received");
        if sent == 0 {
            0.0
        } else {
            1.0 - (received as f64 / sent as f64).min(1.0)
        }
    }

    /// Mean opinion score from the E-model (GSM full-rate codec),
    /// scored at the measured mean one-way delay plus packetization and
    /// playout, and the measured frame loss.
    pub fn mos(&self) -> f64 {
        let delay = self.voice_delay();
        if delay.count() == 0 {
            return 0.0;
        }
        let one_way_ms = delay.mean() + FRAME_MS + PLAYOUT_MS;
        EModel::for_codec(&Vocoder::gsm_full_rate()).mos(
            vgprs_sim::SimDuration::from_micros((one_way_ms * 1000.0) as u64),
            self.frame_loss(),
        )
    }

    /// Events per wall-clock second (not part of the fingerprint).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// The deterministic portion of the report: everything except
    /// wall-clock timing. Two runs with the same configuration and
    /// master seed must render identical text here regardless of
    /// thread count.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!(
            "population            : {} subscribers in {} shards",
            self.subscribers, self.shards
        ));
        line(format!(
            "registered            : {}",
            self.counter("load.registered")
        ));
        line(format!(
            "call attempts         : {} (+{} suppressed: caller busy)",
            self.attempts(),
            self.counter("load.busy_skipped")
        ));
        line(format!(
            "connected             : {} mobile legs, {} wireline legs",
            self.counter("ms.calls_connected"),
            self.counter("term.calls_connected")
        ));
        line(format!(
            "blocking rate         : {:.3}% (TCH), reject rate {:.3}% (H.323)",
            self.blocking_rate() * 100.0,
            self.reject_rate() * 100.0
        ));
        let setup = self.setup_delay();
        line(format!(
            "call-setup delay      : p50 {:.1} ms, p99 {:.1} ms (n={})",
            setup.percentile(50.0),
            setup.percentile(99.0),
            setup.count()
        ));
        let paging = self.paging_delay();
        line(format!(
            "paging latency        : p50 {:.1} ms, p99 {:.1} ms (n={})",
            paging.percentile(50.0),
            paging.percentile(99.0),
            paging.count()
        ));
        let pdp = self.pdp_activation();
        line(format!(
            "voice-PDP activation  : p50 {:.1} ms, p99 {:.1} ms (n={})",
            pdp.percentile(50.0),
            pdp.percentile(99.0),
            pdp.count()
        ));
        let voice = self.voice_delay();
        line(format!(
            "voice one-way delay   : mean {:.1} ms, p99 {:.1} ms (n={})",
            voice.mean(),
            voice.percentile(99.0),
            voice.count()
        ));
        line(format!(
            "voice frame loss      : {:.3}%",
            self.frame_loss() * 100.0
        ));
        line(format!("mean MOS              : {:.2}", self.mos()));
        line(format!(
            "mobility              : {} reselections, {} in-call handoffs",
            self.counter("load.moves"),
            self.counter("ms.handoffs")
        ));
        line(format!(
            "cross-shard handoffs  : {} attempted, {} completed, {} dropped",
            self.handoff_attempts(),
            self.handoff_successes(),
            self.handoff_drops()
        ));
        let interruption = self.handoff_interruption();
        line(format!(
            "handoff interruption  : p50 {:.1} ms, p99 {:.1} ms (n={})",
            interruption.percentile(50.0),
            interruption.percentile(99.0),
            interruption.count()
        ));
        line(format!(
            "handoff frame loss    : {} frames at stale cells",
            self.handoff_frame_loss()
        ));
        line(format!(
            "HLR relocations       : {}",
            self.hlr_relocations()
        ));
        line(format!(
            "events                : {} over {:.1} simulated s",
            self.events, self.sim_secs
        ));
        out
    }

    /// Full human-readable report, including wall-clock throughput.
    pub fn render(&self) -> String {
        format!(
            "{}throughput            : {:.0} events/s on {} threads ({:.2} s wall)\n",
            self.render_deterministic(),
            self.events_per_sec(),
            self.threads,
            self.wall.as_secs_f64()
        )
    }

    /// FNV-1a over the deterministic rendering plus every merged
    /// counter and histogram bucket — the value two runs must share to
    /// be considered identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.render_deterministic().as_bytes());
        // Counters and histograms iterate in sorted (BTreeMap) order.
        for (name, value) in self.stats.counters() {
            eat(name.as_bytes());
            eat(&value.to_le_bytes());
        }
        for (name, hist) in self.stats.histograms() {
            eat(name.as_bytes());
            eat(&hist.count().to_le_bytes());
            eat(&hist.sum().to_bits().to_le_bytes());
            for (midpoint, count) in hist.nonzero_buckets() {
                eat(&midpoint.to_bits().to_le_bytes());
                eat(&count.to_le_bytes());
            }
        }
        h
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}
