//! The merged, deterministic view of a load run.
//!
//! Shard reports are merged **in shard-index order**, so the combined
//! counters, histograms and the fingerprint derived from them are
//! independent of which thread finished first. Wall-clock figures
//! (events/second) are carried separately and explicitly excluded from
//! the fingerprint.

use std::time::Duration;

use vgprs_faults::FaultClass;
use vgprs_media::{EModel, Vocoder};
use vgprs_sim::{Histogram, Stats};

use crate::shard::ShardReport;
use crate::snapshot::SnapshotFrame;

/// Jitter-buffer playout depth added to the measured network delay when
/// scoring MOS (same constant the C1 experiment uses).
const PLAYOUT_MS: f64 = 60.0;
/// Codec packetization interval.
const FRAME_MS: f64 = 20.0;

/// Everything a load run produces.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Population size across all shards.
    pub subscribers: usize,
    /// How many independent serving-area pairs were simulated.
    pub shards: usize,
    /// Worker threads used (does not affect any KPI).
    pub threads: usize,
    /// Merged counters and histograms from every shard.
    pub stats: Stats,
    /// Total simulation events processed.
    pub events: u64,
    /// Simulated seconds covered by the longest shard.
    pub sim_secs: f64,
    /// Wall-clock duration of the parallel run (not deterministic).
    pub wall: Duration,
    /// Snapshot cadence in simulated seconds (`0` = sampling off).
    pub snapshot_secs: u64,
    /// The merged KPI time series: one cumulative frame per cadence
    /// boundary, summed across shards.
    pub snapshots: Vec<SnapshotFrame>,
    /// Each shard's own (unmerged) series, index-aligned with the
    /// merged one. Observability only — never part of any fingerprint.
    pub shard_snapshots: Vec<Vec<SnapshotFrame>>,
}

impl LoadReport {
    /// Merges per-shard evidence; `reports` must be in shard order.
    pub fn merge(
        subscribers: usize,
        threads: usize,
        snapshot_secs: u64,
        reports: &[ShardReport],
        wall: Duration,
    ) -> LoadReport {
        let mut stats = Stats::new();
        let mut events = 0;
        let mut sim_secs = 0f64;
        // Frame i of every shard covers the same nominal boundary (the
        // lockstep engine runs every shard through every epoch), so the
        // merged series is the index-wise sum, folded in shard order.
        let mut snapshots: Vec<SnapshotFrame> = Vec::new();
        for r in reports {
            stats.merge(&r.stats);
            events += r.events;
            sim_secs = sim_secs.max(r.sim_end.as_secs_f64());
            for (i, frame) in r.snapshots.iter().enumerate() {
                match snapshots.get_mut(i) {
                    Some(merged) => merged.merge(frame),
                    None => snapshots.push(frame.clone()),
                }
            }
        }
        LoadReport {
            subscribers,
            shards: reports.len(),
            threads,
            stats,
            events,
            sim_secs,
            wall,
            snapshot_secs,
            snapshots,
            shard_snapshots: reports.iter().map(|r| r.snapshots.clone()).collect(),
        }
    }

    /// The end-of-run snapshot row, sampled from the *merged* stats —
    /// by construction its KPIs equal the summary KPIs exactly (same
    /// counters, same histogram sums, same [`score_mos`] scoring).
    pub fn snapshot_aggregate(&self) -> SnapshotFrame {
        SnapshotFrame::sample((self.sim_secs * 1000.0).round() as u64, &self.stats)
    }

    /// FNV-1a over the snapshot stream (cadence, every frame, and the
    /// end-of-run aggregate). Kept separate from [`Self::fingerprint`]
    /// so committed BENCH artifacts from earlier PRs stay valid.
    pub fn snapshot_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.snapshot_secs.to_le_bytes().iter() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        for frame in &self.snapshots {
            frame.fingerprint_into(&mut h);
        }
        self.snapshot_aggregate().fingerprint_into(&mut h);
        h
    }

    fn counter(&self, name: &str) -> u64 {
        self.stats.counter(name)
    }

    /// Call attempts the generator issued.
    pub fn attempts(&self) -> u64 {
        self.counter("load.attempts") - self.counter("load.busy_skipped")
    }

    /// Merged end-to-end call-setup delay seen by the originators
    /// (mobile post-dial delay plus the wireline terminals' for MT).
    pub fn setup_delay(&self) -> Histogram {
        self.merged_histogram(&["ms.post_dial_delay_ms", "term.post_dial_delay_ms"])
    }

    /// Paging latency at the VMSC (page sent to page response).
    pub fn paging_delay(&self) -> Histogram {
        self.merged_histogram(&["vmsc.paging_response_ms"])
    }

    /// Voice PDP context activation time at the VMSC.
    pub fn pdp_activation(&self) -> Histogram {
        self.merged_histogram(&["vmsc.voice_pdp_activation_ms"])
    }

    /// One-way voice frame delay at both listener types.
    pub fn voice_delay(&self) -> Histogram {
        self.merged_histogram(&["ms.voice_e2e_ms", "term.voice_e2e_ms"])
    }

    /// Inter-VMSC (cross-shard) handoffs the anchor VMSCs initiated.
    pub fn handoff_attempts(&self) -> u64 {
        self.counter("load.handoff_attempts")
    }

    /// Handoffs that completed the full Figure 9 ladder (the anchor
    /// acknowledged `MAP Send End Signal`).
    pub fn handoff_successes(&self) -> u64 {
        self.counter("load.handoff_success")
    }

    /// Handoffs that started a MAP dialogue but never closed it — the
    /// call ended (or the window did) mid-ladder.
    pub fn handoff_drops(&self) -> u64 {
        self.handoff_attempts()
            .saturating_sub(self.handoff_successes())
    }

    /// Voice interruption during handoff: handover-complete on the
    /// target cell to the first downlink frame arriving there.
    pub fn handoff_interruption(&self) -> Histogram {
        self.merged_histogram(&["load.handoff_interruption_ms"])
    }

    /// Downlink frames that chased the subscriber to a cell it had
    /// already left (mid-handoff loss, discarded by the handset).
    pub fn handoff_frame_loss(&self) -> u64 {
        self.counter("ms.ignored_stale_cell")
    }

    /// Idle-mode HLR ownership moves between shards (each direction of
    /// a round trip counts once).
    pub fn hlr_relocations(&self) -> u64 {
        self.counter("load.hlr_relocations")
    }

    /// Impairment windows the fault plan opened across all shards.
    pub fn faults_injected(&self) -> u64 {
        self.counter("load.faults_injected")
    }

    /// Probed calls found dead inside a window of the given fault class.
    pub fn dropped_by_class(&self, class: FaultClass) -> u64 {
        self.counter(&format!("load.dropped_{}", class.key()))
    }

    /// Probed calls found dead outside any fault window (ordinary
    /// blocking / admission rejects the redial machinery also retries).
    pub fn dropped_baseline(&self) -> u64 {
        self.counter("load.dropped_baseline")
    }

    /// Scheduled impairment seconds for the given fault class.
    pub fn unavailability_secs(&self, class: FaultClass) -> f64 {
        self.counter(&format!("load.unavailability_ms_{}", class.key())) as f64 / 1000.0
    }

    /// Trunk flits the fabric resent after a lost transmission (every
    /// back-off rung of every pending flit counts once).
    pub fn trunk_retransmits(&self) -> u64 {
        self.counter("trunk.retransmits")
    }

    /// Duplicate trunk flits the receive window suppressed.
    pub fn trunk_dup_drops(&self) -> u64 {
        self.counter("trunk.dup_drops")
    }

    /// Trunk flits whose retransmission budget ran out (the sender
    /// shard was told and resolved the casualty).
    pub fn trunk_expired(&self) -> u64 {
        self.counter("trunk.expired")
    }

    /// Trunk transmissions a full partition window swallowed.
    pub fn trunk_partition_drops(&self) -> u64 {
        self.counter("trunk.drops_partition")
    }

    /// Trunk transmissions random envelope loss swallowed.
    pub fn trunk_loss_drops(&self) -> u64 {
        self.counter("trunk.drops_loss")
    }

    /// Duplicate trunk transmissions the fault plan injected.
    pub fn trunk_dup_injected(&self) -> u64 {
        self.counter("trunk.dup_injected")
    }

    /// Trunk transmissions a reorder window delayed past their peers.
    pub fn trunk_reordered(&self) -> u64 {
        self.counter("trunk.reordered")
    }

    /// Partition windows that closed (heal edges observed per pair).
    pub fn trunk_heals(&self) -> u64 {
        self.counter("trunk.heals")
    }

    /// Voice frames written off because their trunk flit expired.
    pub fn trunk_frame_drops(&self) -> u64 {
        self.counter("load.trunk_frame_drops")
    }

    /// Mid-ladder handoffs a partition killed: supervised teardowns
    /// with a Q.850 recovery-on-timer-expiry cause.
    pub fn trunk_handoff_drops(&self) -> u64 {
        self.counter("load.trunk_handoff_drops")
    }

    /// Stranded movers re-routed to their home anchor after a heal.
    pub fn trunk_reroutes(&self) -> u64 {
        self.counter("load.trunk_reroutes")
    }

    /// Out-of-order arrival depth at the trunk receive windows (how far
    /// ahead of the next expected sequence number a flit landed).
    pub fn trunk_reorder_depth(&self) -> Histogram {
        self.merged_histogram(&["trunk.reorder_depth"])
    }

    /// Partition heal to re-routed recovery, per stranded subscriber.
    pub fn trunk_heal_recovery(&self) -> Histogram {
        self.merged_histogram(&["load.heal_recovery_ms"])
    }

    /// Driver redials after a dead call (attempt 1 and up).
    pub fn redial_attempts(&self) -> u64 {
        self.counter("load.redial_attempts")
    }

    /// VMSC guard-timer retries: gatekeeper registration (RRQ) and call
    /// admission (ARQ) resends.
    pub fn guard_retries(&self) -> (u64, u64) {
        (
            self.counter("vmsc.ras_retries"),
            self.counter("vmsc.arq_retries"),
        )
    }

    /// Time from first failure to verified recovery, merged across all
    /// three recovery ladders (RAS re-registration, ARQ re-admission,
    /// caller redial).
    pub fn recovery_time(&self) -> Histogram {
        self.merged_histogram(&[
            "vmsc.ras_recovery_ms",
            "vmsc.arq_recovery_ms",
            "load.redial_recovery_ms",
        ])
    }

    /// Pages the VMSC throttle deferred to a later one-second window.
    pub fn pages_throttled(&self) -> u64 {
        self.counter("vmsc.pages_throttled")
    }

    /// MT calls the paging throttle shed (queue overflow) with a
    /// network-congestion release.
    pub fn pages_shed(&self) -> u64 {
        self.counter("vmsc.pages_shed")
    }

    /// Admissions the gatekeeper shed with a congestion ARJ.
    pub fn gk_admission_shed(&self) -> u64 {
        self.counter("gk.admission_shed")
    }

    /// Congestion ARJs the VMSC absorbed into the ARQ retry ladder
    /// instead of clearing the call.
    pub fn gk_shed_deferred(&self) -> u64 {
        self.counter("vmsc.admission_shed_deferred")
    }

    /// PDP activations the SGSN admission control deferred.
    pub fn pdp_deferred(&self) -> u64 {
        self.counter("sgsn.pdp_admission_deferred")
    }

    /// PDP activations the SGSN admission control rejected outright
    /// (queue overflow, network-congestion cause).
    pub fn pdp_rejected(&self) -> u64 {
        self.counter("sgsn.pdp_admission_rejected")
    }

    /// Added delay the overload controls imposed on admitted work:
    /// paging-throttle deferral plus SGSN admission queueing.
    pub fn admission_delay(&self) -> Histogram {
        self.merged_histogram(&[
            "vmsc.paging_throttle_delay_ms",
            "sgsn.pdp_admission_delay_ms",
        ])
    }

    /// Call attempts issued while the demand plan was in a peak segment
    /// (above [`vgprs_scenario::PEAK_ATTRIBUTION_THRESHOLD`]); zero on a
    /// flat-demand run.
    pub fn attempts_peak(&self) -> u64 {
        self.counter("load.attempts_peak")
    }

    /// Call attempts issued under steady-state (non-peak) demand; zero
    /// on a flat-demand run, where attribution is off entirely.
    pub fn attempts_steady(&self) -> u64 {
        self.counter("load.attempts_steady")
    }

    /// Fraction of peak-segment attempts later probed dead (blocking,
    /// sheds, rejects — everything the redial machinery sees).
    pub fn peak_drop_rate(&self) -> f64 {
        ratio(self.counter("load.dropped_peak"), self.attempts_peak())
    }

    /// Fraction of steady-state attempts later probed dead.
    pub fn steady_drop_rate(&self) -> f64 {
        ratio(self.counter("load.dropped_steady"), self.attempts_steady())
    }

    fn merged_histogram(&self, names: &[&str]) -> Histogram {
        let mut out = Histogram::new();
        for n in names {
            if let Some(h) = self.stats.histogram(n) {
                out.merge(h);
            }
        }
        out
    }

    /// Fraction of attempts refused a traffic channel at the cell.
    pub fn blocking_rate(&self) -> f64 {
        ratio(self.counter("bsc.tch_blocked"), self.attempts())
    }

    /// Fraction of attempts the H.323 side refused (gatekeeper
    /// bandwidth, unknown alias while roaming, VMSC admission).
    pub fn reject_rate(&self) -> f64 {
        let rejected = self.counter("gk.admission_rejected_bandwidth")
            + self.counter("gk.admission_rejected_unknown_alias")
            + self.counter("vmsc.admission_rejected");
        ratio(rejected, self.attempts())
    }

    /// Voice frame loss across both directions.
    pub fn frame_loss(&self) -> f64 {
        let sent = self.counter("ms.voice_frames_sent") + self.counter("term.rtp_sent");
        let received =
            self.counter("ms.voice_frames_received") + self.counter("term.rtp_received");
        if sent == 0 {
            0.0
        } else {
            1.0 - (received as f64 / sent as f64).min(1.0)
        }
    }

    /// Mean opinion score from the E-model (GSM full-rate codec),
    /// scored at the measured mean one-way delay plus packetization and
    /// playout, and the measured frame loss.
    pub fn mos(&self) -> f64 {
        let delay = self.voice_delay();
        score_mos(delay.count(), delay.mean(), self.frame_loss())
    }

    /// Events per wall-clock second (not part of the fingerprint).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// The deterministic portion of the report: everything except
    /// wall-clock timing. Two runs with the same configuration and
    /// master seed must render identical text here regardless of
    /// thread count.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!(
            "population            : {} subscribers in {} shards",
            self.subscribers, self.shards
        ));
        line(format!(
            "registered            : {}",
            self.counter("load.registered")
        ));
        line(format!(
            "call attempts         : {} (+{} suppressed: caller busy)",
            self.attempts(),
            self.counter("load.busy_skipped")
        ));
        line(format!(
            "connected             : {} mobile legs, {} wireline legs",
            self.counter("ms.calls_connected"),
            self.counter("term.calls_connected")
        ));
        line(format!(
            "blocking rate         : {:.3}% (TCH), reject rate {:.3}% (H.323)",
            self.blocking_rate() * 100.0,
            self.reject_rate() * 100.0
        ));
        let setup = self.setup_delay();
        line(format!(
            "call-setup delay      : p50 {:.1} ms, p99 {:.1} ms (n={})",
            setup.percentile(50.0),
            setup.percentile(99.0),
            setup.count()
        ));
        let paging = self.paging_delay();
        line(format!(
            "paging latency        : p50 {:.1} ms, p99 {:.1} ms (n={})",
            paging.percentile(50.0),
            paging.percentile(99.0),
            paging.count()
        ));
        let pdp = self.pdp_activation();
        line(format!(
            "voice-PDP activation  : p50 {:.1} ms, p99 {:.1} ms (n={})",
            pdp.percentile(50.0),
            pdp.percentile(99.0),
            pdp.count()
        ));
        let voice = self.voice_delay();
        line(format!(
            "voice one-way delay   : mean {:.1} ms, p99 {:.1} ms (n={})",
            voice.mean(),
            voice.percentile(99.0),
            voice.count()
        ));
        line(format!(
            "voice frame loss      : {:.3}%",
            self.frame_loss() * 100.0
        ));
        line(format!("mean MOS              : {:.2}", self.mos()));
        line(format!(
            "mobility              : {} reselections, {} in-call handoffs",
            self.counter("load.moves"),
            self.counter("ms.handoffs")
        ));
        line(format!(
            "cross-shard handoffs  : {} attempted, {} completed, {} dropped",
            self.handoff_attempts(),
            self.handoff_successes(),
            self.handoff_drops()
        ));
        let interruption = self.handoff_interruption();
        line(format!(
            "handoff interruption  : p50 {:.1} ms, p99 {:.1} ms (n={})",
            interruption.percentile(50.0),
            interruption.percentile(99.0),
            interruption.count()
        ));
        line(format!(
            "handoff frame loss    : {} frames at stale cells",
            self.handoff_frame_loss()
        ));
        line(format!(
            "HLR relocations       : {}",
            self.hlr_relocations()
        ));
        // Trunk-resilience block: rendered unconditionally (all zeros
        // when the trunk fault plan is off) so the report shape — and
        // therefore the fingerprint layout — never depends on config.
        line(format!(
            "trunk chaos           : {} lost ({} partition), {} duplicated, {} reordered, {} acks dropped",
            self.trunk_partition_drops() + self.trunk_loss_drops(),
            self.trunk_partition_drops(),
            self.counter("trunk.dup_injected"),
            self.counter("trunk.reordered"),
            self.counter("trunk.acks_dropped")
        ));
        let reorder = self.trunk_reorder_depth();
        line(format!(
            "trunk recovery        : {} retransmits, {} dup drops, {} expired; reorder depth p99 {:.1} (n={})",
            self.trunk_retransmits(),
            self.trunk_dup_drops(),
            self.trunk_expired(),
            reorder.percentile(99.0),
            reorder.count()
        ));
        line(format!(
            "trunk casualties      : {} handoff teardowns (q850 102), {} voice expiries, {} mobility reverts",
            self.trunk_handoff_drops(),
            self.trunk_frame_drops(),
            self.counter("load.trunk_mobility_reverts")
        ));
        let heal = self.trunk_heal_recovery();
        line(format!(
            "trunk heal            : {} heals, {} re-routes; recovery p50 {:.1} ms, p99 {:.1} ms (n={})",
            self.trunk_heals(),
            self.trunk_reroutes(),
            heal.percentile(50.0),
            heal.percentile(99.0),
            heal.count()
        ));
        // Resilience block: rendered unconditionally (all zeros on a
        // fault-free run) so the report shape never depends on config.
        line(format!(
            "faults injected       : {} (unavailability: link {:.1} s, crash {:.1} s, blackhole {:.1} s)",
            self.faults_injected(),
            self.unavailability_secs(FaultClass::LinkDegrade),
            self.unavailability_secs(FaultClass::NodeCrash),
            self.unavailability_secs(FaultClass::Blackhole)
        ));
        line(format!(
            "calls dropped         : {} link-degrade, {} node-crash, {} blackhole (+{} baseline)",
            self.dropped_by_class(FaultClass::LinkDegrade),
            self.dropped_by_class(FaultClass::NodeCrash),
            self.dropped_by_class(FaultClass::Blackhole),
            self.dropped_baseline()
        ));
        let recovery = self.recovery_time();
        line(format!(
            "recovery time         : p50 {:.1} ms, p99 {:.1} ms (n={})",
            recovery.percentile(50.0),
            recovery.percentile(99.0),
            recovery.count()
        ));
        let (ras_retries, arq_retries) = self.guard_retries();
        line(format!(
            "retries               : {} RRQ, {} ARQ, {} redials ({} exhausted)",
            ras_retries,
            arq_retries,
            self.redial_attempts(),
            self.counter("load.redials_exhausted")
        ));
        // Overload block: also rendered unconditionally (all zeros with
        // the controls off and a flat demand plan).
        line(format!(
            "overload sheds        : {} pages throttled, {} pages shed, {} GK ARJ ({} deferred to retry)",
            self.pages_throttled(),
            self.pages_shed(),
            self.gk_admission_shed(),
            self.gk_shed_deferred()
        ));
        let admission = self.admission_delay();
        line(format!(
            "PDP admission         : {} deferred, {} rejected; delay p50 {:.1} ms, p99 {:.1} ms (n={})",
            self.pdp_deferred(),
            self.pdp_rejected(),
            admission.percentile(50.0),
            admission.percentile(99.0),
            admission.count()
        ));
        line(format!(
            "surge drop rate       : peak {:.3}% ({} attempts), steady {:.3}% ({} attempts)",
            self.peak_drop_rate() * 100.0,
            self.attempts_peak(),
            self.steady_drop_rate() * 100.0,
            self.attempts_steady()
        ));
        line(format!(
            "events                : {} over {:.1} simulated s",
            self.events, self.sim_secs
        ));
        out
    }

    /// Full human-readable report, including wall-clock throughput.
    pub fn render(&self) -> String {
        format!(
            "{}throughput            : {:.0} events/s on {} threads ({:.2} s wall)\n",
            self.render_deterministic(),
            self.events_per_sec(),
            self.threads,
            self.wall.as_secs_f64()
        )
    }

    /// Machine-readable report: every KPI, counter and histogram bucket
    /// as a JSON object (hand-rolled — the workspace is hermetic, no
    /// serde). Wall-clock figures are included but, as everywhere else,
    /// only the deterministic fields feed the fingerprint.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"subscribers\": {},\n", self.subscribers));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"sim_secs\": {},\n", json_f64(self.sim_secs)));
        out.push_str(&format!(
            "  \"wall_secs\": {},\n",
            json_f64(self.wall.as_secs_f64())
        ));
        out.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            json_f64(self.events_per_sec())
        ));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n",
            self.fingerprint()
        ));
        out.push_str("  \"kpis\": {\n");
        out.push_str(&format!("    \"attempts\": {},\n", self.attempts()));
        out.push_str(&format!(
            "    \"blocking_rate\": {},\n",
            json_f64(self.blocking_rate())
        ));
        out.push_str(&format!(
            "    \"reject_rate\": {},\n",
            json_f64(self.reject_rate())
        ));
        out.push_str(&format!(
            "    \"frame_loss\": {},\n",
            json_f64(self.frame_loss())
        ));
        out.push_str(&format!("    \"mos\": {},\n", json_f64(self.mos())));
        for (name, hist) in [
            ("setup_delay_ms", self.setup_delay()),
            ("paging_delay_ms", self.paging_delay()),
            ("pdp_activation_ms", self.pdp_activation()),
            ("voice_delay_ms", self.voice_delay()),
            ("handoff_interruption_ms", self.handoff_interruption()),
        ] {
            out.push_str(&format!(
                "    \"{name}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}},\n",
                hist.count(),
                json_f64(hist.mean()),
                json_f64(hist.percentile(50.0)),
                json_f64(hist.percentile(99.0))
            ));
        }
        out.push_str(&format!(
            "    \"handoff_attempts\": {},\n",
            self.handoff_attempts()
        ));
        out.push_str(&format!(
            "    \"handoff_successes\": {},\n",
            self.handoff_successes()
        ));
        out.push_str(&format!("    \"handoff_drops\": {},\n", self.handoff_drops()));
        out.push_str(&format!(
            "    \"handoff_frame_loss\": {},\n",
            self.handoff_frame_loss()
        ));
        out.push_str(&format!(
            "    \"hlr_relocations\": {},\n",
            self.hlr_relocations()
        ));
        out.push_str("    \"resilience\": {\n");
        out.push_str(&format!(
            "      \"faults_injected\": {},\n",
            self.faults_injected()
        ));
        for class in FaultClass::ALL {
            out.push_str(&format!(
                "      \"dropped_{}\": {},\n",
                class.key(),
                self.dropped_by_class(class)
            ));
        }
        out.push_str(&format!(
            "      \"dropped_baseline\": {},\n",
            self.dropped_baseline()
        ));
        let (ras_retries, arq_retries) = self.guard_retries();
        out.push_str(&format!("      \"ras_retries\": {ras_retries},\n"));
        out.push_str(&format!("      \"arq_retries\": {arq_retries},\n"));
        out.push_str(&format!(
            "      \"redial_attempts\": {},\n",
            self.redial_attempts()
        ));
        out.push_str(&format!(
            "      \"redials_exhausted\": {},\n",
            self.counter("load.redials_exhausted")
        ));
        let recovery = self.recovery_time();
        out.push_str(&format!(
            "      \"recovery_ms\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}},\n",
            recovery.count(),
            json_f64(recovery.mean()),
            json_f64(recovery.percentile(50.0)),
            json_f64(recovery.percentile(99.0))
        ));
        out.push_str("      \"unavailability_secs\": {");
        let mut first = true;
        for class in FaultClass::ALL {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {}",
                class.key(),
                json_f64(self.unavailability_secs(class))
            ));
        }
        out.push_str("}\n");
        out.push_str("    },\n");
        out.push_str("    \"overload\": {\n");
        out.push_str(&format!(
            "      \"pages_throttled\": {},\n",
            self.pages_throttled()
        ));
        out.push_str(&format!("      \"pages_shed\": {},\n", self.pages_shed()));
        out.push_str(&format!(
            "      \"gk_admission_shed\": {},\n",
            self.gk_admission_shed()
        ));
        out.push_str(&format!(
            "      \"gk_shed_deferred\": {},\n",
            self.gk_shed_deferred()
        ));
        out.push_str(&format!("      \"pdp_deferred\": {},\n", self.pdp_deferred()));
        out.push_str(&format!("      \"pdp_rejected\": {},\n", self.pdp_rejected()));
        let admission = self.admission_delay();
        out.push_str(&format!(
            "      \"admission_delay_ms\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}},\n",
            admission.count(),
            json_f64(admission.mean()),
            json_f64(admission.percentile(50.0)),
            json_f64(admission.percentile(99.0))
        ));
        out.push_str(&format!(
            "      \"attempts_peak\": {},\n",
            self.attempts_peak()
        ));
        out.push_str(&format!(
            "      \"attempts_steady\": {},\n",
            self.attempts_steady()
        ));
        out.push_str(&format!(
            "      \"peak_drop_rate\": {},\n",
            json_f64(self.peak_drop_rate())
        ));
        out.push_str(&format!(
            "      \"steady_drop_rate\": {}\n",
            json_f64(self.steady_drop_rate())
        ));
        out.push_str("    },\n");
        out.push_str("    \"trunk\": {\n");
        for (name, value) in [
            ("retransmits", self.trunk_retransmits()),
            ("dup_drops", self.trunk_dup_drops()),
            ("expired", self.trunk_expired()),
            ("drops_partition", self.trunk_partition_drops()),
            ("drops_loss", self.trunk_loss_drops()),
            ("dup_injected", self.counter("trunk.dup_injected")),
            ("reordered", self.counter("trunk.reordered")),
            ("acks_dropped", self.counter("trunk.acks_dropped")),
            ("frame_drops", self.trunk_frame_drops()),
            ("handoff_drops", self.trunk_handoff_drops()),
            ("q850_102", self.counter("load.trunk_q850_102")),
            ("visitor_drops", self.counter("load.trunk_visitor_drops")),
            ("signal_drops", self.counter("load.trunk_signal_drops")),
            ("mobility_reverts", self.counter("load.trunk_mobility_reverts")),
            ("heals", self.trunk_heals()),
            ("reroutes", self.trunk_reroutes()),
        ] {
            out.push_str(&format!("      \"{name}\": {value},\n"));
        }
        for (name, hist) in [
            ("reorder_depth", self.trunk_reorder_depth()),
            ("heal_recovery_ms", self.trunk_heal_recovery()),
        ] {
            out.push_str(&format!(
                "      \"{name}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                hist.count(),
                json_f64(hist.mean()),
                json_f64(hist.percentile(50.0)),
                json_f64(hist.percentile(99.0))
            ));
            out.push_str(if name == "reorder_depth" { ",\n" } else { "\n" });
        }
        out.push_str("    }\n");
        out.push_str("  },\n");
        out.push_str(&self.snapshots_block("  "));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in self.stats.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), value));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, hist) in self.stats.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(name),
                hist.count(),
                json_f64(hist.sum())
            ));
            let mut first_bucket = true;
            for (midpoint, count) in hist.nonzero_buckets() {
                if !first_bucket {
                    out.push_str(", ");
                }
                first_bucket = false;
                out.push_str(&format!("[{}, {count}]", json_f64(midpoint)));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The `"snapshots"` JSON member (with trailing comma) at the
    /// given indent: cadence, stream fingerprint, every frame, and the
    /// end-of-run aggregate row.
    fn snapshots_block(&self, indent: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{indent}\"snapshots\": {{\n"));
        out.push_str(&format!(
            "{indent}  \"cadence_secs\": {},\n",
            self.snapshot_secs
        ));
        out.push_str(&format!(
            "{indent}  \"fingerprint\": \"{:016x}\",\n",
            self.snapshot_fingerprint()
        ));
        out.push_str(&format!("{indent}  \"frames\": ["));
        let mut first = true;
        for frame in &self.snapshots {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n{indent}    "));
            out.push_str(&frame.to_json(&format!("{indent}    ")));
        }
        if !first {
            out.push_str(&format!("\n{indent}  "));
        }
        out.push_str("],\n");
        out.push_str(&format!("{indent}  \"aggregate\": "));
        out.push_str(&self.snapshot_aggregate().to_json(&format!("{indent}  ")));
        out.push('\n');
        out.push_str(&format!("{indent}}},\n"));
        out
    }

    /// A standalone snapshot-stream document for `harness load
    /// --snapshots out.json`: run shape plus the time series, without
    /// the full counter/histogram dump.
    pub fn snapshots_json(&self) -> String {
        self.snapshots_json_with(false)
    }

    /// Like [`Self::snapshots_json`], optionally including each shard's
    /// own (unmerged) series under `"per_shard"` — the `harness load
    /// --snapshots-per-shard` view for localizing a KPI excursion to
    /// the shard that produced it.
    pub fn snapshots_json_with(&self, per_shard: bool) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"subscribers\": {},\n", self.subscribers));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"sim_secs\": {},\n", json_f64(self.sim_secs)));
        out.push_str(&self.snapshots_block("  "));
        if per_shard {
            out.push_str("  \"per_shard\": [");
            for (i, frames) in self.shard_snapshots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    {{\"shard\": {i}, \"frames\": ["));
                let mut first = true;
                for frame in frames {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str("\n      ");
                    out.push_str(&frame.to_json("      "));
                }
                if !first {
                    out.push_str("\n    ");
                }
                out.push_str("]}");
            }
            if !self.shard_snapshots.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("],\n");
        }
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\"\n",
            self.fingerprint()
        ));
        out.push_str("}\n");
        out
    }

    /// The snapshot frame stream as CSV for `harness load
    /// --snapshots-csv`: one row per merged frame (shard `all`) plus,
    /// when `per_shard` is set, one row per shard per frame. Columns
    /// are the derived KPIs followed by every schema counter, so the
    /// file round-trips into any spreadsheet or plotting tool.
    pub fn snapshots_csv(&self, per_shard: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("shard,at_ms,attempts,blocking_rate,reject_rate,frame_loss,mos");
        for name in crate::snapshot::SNAPSHOT_COUNTERS {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        let mut row = |shard: &str, frame: &SnapshotFrame| {
            out.push_str(&format!(
                "{shard},{},{},{},{},{},{}",
                frame.at_ms,
                frame.attempts(),
                json_f64(frame.blocking_rate()),
                json_f64(frame.reject_rate()),
                json_f64(frame.frame_loss()),
                json_f64(frame.mos())
            ));
            for v in &frame.counters {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        };
        for frame in &self.snapshots {
            row("all", frame);
        }
        if per_shard {
            for (i, frames) in self.shard_snapshots.iter().enumerate() {
                let label = i.to_string();
                for frame in frames {
                    row(&label, frame);
                }
            }
        }
        out
    }

    /// FNV-1a over the deterministic rendering plus every merged
    /// counter and histogram bucket — the value two runs must share to
    /// be considered identical.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.render_deterministic().as_bytes());
        // Counters and histograms iterate in sorted (BTreeMap) order.
        for (name, value) in self.stats.counters() {
            eat(name.as_bytes());
            eat(&value.to_le_bytes());
        }
        for (name, hist) in self.stats.histograms() {
            eat(name.as_bytes());
            eat(&hist.count().to_le_bytes());
            eat(&hist.sum().to_bits().to_le_bytes());
            for (midpoint, count) in hist.nonzero_buckets() {
                eat(&midpoint.to_bits().to_le_bytes());
                eat(&count.to_le_bytes());
            }
        }
        h
    }
}

pub(crate) fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// E-model MOS for a mean one-way voice delay and frame-loss fraction:
/// the single scoring path shared by the run summary and the snapshot
/// frames, so an aggregate frame's MOS equals the summary's bit for
/// bit. Returns 0.0 when no voice was sampled.
pub(crate) fn score_mos(delay_count: u64, mean_delay_ms: f64, loss: f64) -> f64 {
    if delay_count == 0 {
        return 0.0;
    }
    let one_way_ms = mean_delay_ms + FRAME_MS + PLAYOUT_MS;
    EModel::for_codec(&Vocoder::gsm_full_rate()).mos(
        vgprs_sim::SimDuration::from_micros((one_way_ms * 1000.0) as u64),
        loss,
    )
}

/// Renders an `f64` as a JSON number — `null` for NaN/infinity, which
/// JSON cannot represent.
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for use inside JSON quotes. Counter names are plain
/// ASCII identifiers today; this keeps the output valid if that changes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain.counter"), "plain.counter");
    }

    #[test]
    fn to_json_is_wellformed_for_an_empty_report() {
        let report = LoadReport::merge(0, 1, 60, &[], Duration::ZERO);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"fingerprint\""));
        assert!(json.contains("\"mos\": 0.0"));
    }
}
