//! # vgprs-load — population-scale busy-hour traffic for the vGPRS testbed
//!
//! This crate answers the capacity questions the paper's testbed was too
//! small to ask: *how many subscribers can one VMSC deployment carry
//! before call-setup latency, blocking or voice quality degrade?*
//!
//! It is built from three pieces:
//!
//! - [`population`] — a statistical subscriber model: per-subscriber
//!   Poisson call arrivals, exponential holding times, a configurable
//!   MO/MT/mobile-to-mobile mix and idle-mode mobility excursions.
//!   Every subscriber's behavior derives from the master seed and the
//!   subscriber's global index alone, so it is invariant under
//!   re-partitioning.
//! - [`shard`] + [`engine`] + [`mailbox`] — the population is split
//!   across vGPRS serving-area pairs (built with
//!   `vgprs_core::VgprsZone`), one `vgprs_sim::Network` per shard,
//!   advanced in **epoch lockstep** by a thread pool. Shards exchange
//!   traffic — inter-VMSC handoff dialogue, trunk voice, idle-mode HLR
//!   ownership moves — through a sequenced inter-shard mailbox whose
//!   delivery order depends only on the configuration and seed, so a
//!   run is **bit-identical regardless of thread count**.
//! - [`report`] — streaming KPIs merged from the shards' O(buckets)
//!   histograms: call-setup delay, paging latency, voice-PDP activation
//!   time, blocking/reject rates, RTP frame delay/loss scored through
//!   the ITU-T G.107 E-model, and events/second.
//!
//! ```no_run
//! use vgprs_load::{run_load, LoadConfig};
//!
//! let report = run_load(&LoadConfig {
//!     subscribers: 100_000,
//!     threads: 8,
//!     ..LoadConfig::default()
//! });
//! print!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod engine;
pub mod mailbox;
pub mod population;
pub mod report;
pub mod shard;
pub mod snapshot;
pub mod trunk;

pub use capacity::{capacity_knee, capacity_sweep, CapacityPoint, CapacitySweep, KneeEstimate, KneeSearch};
pub use engine::{partition, run_load, LoadConfig};
pub use mailbox::{
    Envelope, ExpiredKind, Flit, HlrDirectory, Mailbox, RadioGate, TrunkGate, BORDER_CELL,
    EPOCH_MS,
};
pub use population::{
    subscriber_plan, subscriber_plan_demand, Arrival, CallKind, CallMix, Excursion,
    PopulationConfig, SubscriberPlan,
};
pub use report::LoadReport;
pub use shard::{run_shard, Shard, ShardConfig, ShardReport};
pub use snapshot::{
    window_delta, SnapshotFrame, SnapshotRecorder, SNAPSHOT_COUNTERS, SNAPSHOT_HISTOGRAMS,
};
pub use trunk::{retransmit_backoff, TrunkFabric};
// Re-exported so load-engine callers can configure fault plans and
// demand scenarios without naming those crates themselves.
pub use vgprs_faults::{FaultClass, FaultPlanConfig, TrunkFaultClass, TrunkPlanConfig};
pub use vgprs_scenario::{
    compile_demand, DemandPlan, FlashCrowd, OverloadControls, ScenarioConfig,
};
