//! # vgprs-faults — deterministic fault plans for the vGPRS testbed
//!
//! The load engine exercises a *perfect* network: links never degrade,
//! nodes never restart, signaling peers always answer. This crate adds the
//! missing failure axis without giving up the repo's core invariant —
//! **bit-identical runs across thread counts and event kernels**.
//!
//! The trick is that faults are not injected by a stochastic process racing
//! the simulation; they are *compiled ahead of time* into a [`FaultPlan`]:
//! a sorted list of `(start, duration, kind)` impairment windows derived
//! purely from `(config, master_seed, shard_index)` by [`compile_plan`].
//! The load driver walks the plan exactly like it walks subscriber call
//! schedules — every injection is an ordinary driver action at a fixed
//! simulated time, so the event kernel sees the same totally-ordered event
//! stream regardless of `--threads` or `Kernel::{Heap,Wheel}`.
//!
//! Three fault classes cover the failure modes the paper's deployment
//! would meet in the field:
//!
//! * [`FaultClass::LinkDegrade`] — loss, added latency and a bandwidth
//!   clamp on the Gb (VMSC↔SGSN) or Gn (SGSN↔GGSN) link,
//! * [`FaultClass::NodeCrash`] — crash-and-restart with state loss for
//!   SGSN, GGSN, gatekeeper or VMSC, forcing cold-start re-registration,
//! * [`FaultClass::Blackhole`] — the node stays up but silently drops all
//!   signaling (RAS/ISUP requests time out instead of being rejected).
//!
//! Intensity `0.0` compiles to an **empty plan**, which the driver treats
//! as "faults disabled" — the run is then byte-for-byte identical to one
//! that never linked this crate's output at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vgprs_sim::{SimDuration, SimRng};

/// Sub-stream salt for fault-plan derivation, disjoint from the load
/// engine's shard/call/mobility streams.
pub const STREAM_FAULTS: u64 = 0x0FA1_75EE_D0DD_BA11_u64;

/// The three injectable failure classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FaultClass {
    /// Loss / latency / bandwidth impairment on a backbone link.
    LinkDegrade,
    /// Node crash with state loss, followed by a restart.
    NodeCrash,
    /// Node silently drops all traffic while keeping its state.
    Blackhole,
}

impl FaultClass {
    /// All classes, in a fixed order used for plan compilation and KPIs.
    pub const ALL: [FaultClass; 3] =
        [FaultClass::LinkDegrade, FaultClass::NodeCrash, FaultClass::Blackhole];

    /// Stable lowercase identifier used in stats keys and JSON.
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::LinkDegrade => "link_degrade",
            FaultClass::NodeCrash => "node_crash",
            FaultClass::Blackhole => "blackhole",
        }
    }
}

/// Which backbone link a [`FaultKind::DegradeLink`] impairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkSel {
    /// VMSC ↔ SGSN (all LLC-tunneled signaling and voice).
    Gb,
    /// SGSN ↔ GGSN (GTP tunnel toward the IP backbone).
    Gn,
}

/// Which network element a crash or blackhole targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeSel {
    /// Serving GPRS support node: loses MM and PDP contexts.
    Sgsn,
    /// Gateway GPRS support node: loses dynamic PDP records.
    Ggsn,
    /// H.323 gatekeeper: loses registrations and admissions.
    Gatekeeper,
    /// The paper's VMSC: loses every MS entry and active call.
    Vmsc,
}

impl NodeSel {
    const ALL: [NodeSel; 4] = [NodeSel::Sgsn, NodeSel::Ggsn, NodeSel::Gatekeeper, NodeSel::Vmsc];
}

/// A concrete impairment, parameterized by its class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Degrade a backbone link for the window's duration.
    DegradeLink {
        /// Link to impair.
        link: LinkSel,
        /// Extra one-way latency while degraded.
        added_latency: SimDuration,
        /// Loss probability applied to unreliable frames.
        loss: f64,
        /// Clamped bandwidth in bits/s (0 = leave unchanged).
        bandwidth_bps: u64,
    },
    /// Crash the node (state loss); it restarts when the window ends.
    Crash {
        /// Node to crash.
        node: NodeSel,
    },
    /// Blackhole the node (drops everything, keeps state) until the
    /// window ends.
    Blackhole {
        /// Node to silence.
        node: NodeSel,
    },
}

impl FaultKind {
    /// The class this kind belongs to.
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::DegradeLink { .. } => FaultClass::LinkDegrade,
            FaultKind::Crash { .. } => FaultClass::NodeCrash,
            FaultKind::Blackhole { .. } => FaultClass::Blackhole,
        }
    }
}

/// One scheduled impairment window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Window start, in ms of simulated time after the warm-up origin.
    pub at_ms: u64,
    /// Window length in ms; the driver restores/restarts at `at_ms +
    /// duration_ms`.
    pub duration_ms: u64,
    /// What the window does.
    pub kind: FaultKind,
}

/// Knobs for [`compile_plan`]. `Default` is all-off (zero intensity).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlanConfig {
    /// Scales both the number of windows and their severity. `0.0`
    /// compiles to an empty plan; `1.0` is the nominal chaos level.
    pub intensity: f64,
    /// Enable [`FaultClass::LinkDegrade`] windows.
    pub link_degrade: bool,
    /// Enable [`FaultClass::NodeCrash`] windows.
    pub node_crash: bool,
    /// Enable [`FaultClass::Blackhole`] windows.
    pub blackhole: bool,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig { intensity: 0.0, link_degrade: false, node_crash: false, blackhole: false }
    }
}

impl FaultPlanConfig {
    /// Convenience: all three classes enabled at the given intensity.
    pub fn all(intensity: f64) -> Self {
        FaultPlanConfig { intensity, link_degrade: true, node_crash: true, blackhole: true }
    }

    /// Convenience: a single class enabled at the given intensity.
    pub fn only(class: FaultClass, intensity: f64) -> Self {
        let mut cfg = FaultPlanConfig { intensity, ..FaultPlanConfig::default() };
        match class {
            FaultClass::LinkDegrade => cfg.link_degrade = true,
            FaultClass::NodeCrash => cfg.node_crash = true,
            FaultClass::Blackhole => cfg.blackhole = true,
        }
        cfg
    }

    /// True if no window can ever be compiled from this config.
    pub fn is_off(&self) -> bool {
        self.intensity <= 0.0 || !(self.link_degrade || self.node_crash || self.blackhole)
    }
}

/// A compiled, per-shard fault schedule. Windows are sorted by
/// `(at_ms, duration_ms)` with class order breaking exact ties.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled impairment windows.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// True if the plan schedules nothing (faults disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total scheduled impairment time for a class, in ms. Overlapping
    /// windows are summed, not unioned: the KPI measures injected fault
    /// exposure, not wall-clock outage.
    pub fn unavailability_ms(&self, class: FaultClass) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.class() == class)
            .map(|e| e.duration_ms)
            .sum()
    }

    /// True if `[from_ms, to_ms]` overlaps any window of `class`.
    pub fn overlaps(&self, class: FaultClass, from_ms: u64, to_ms: u64) -> bool {
        self.events.iter().any(|e| {
            e.kind.class() == class && e.at_ms <= to_ms && from_ms <= e.at_ms + e.duration_ms
        })
    }
}

/// Number of windows a class gets at the given intensity over `window_secs`
/// of busy hour: roughly one per 30 simulated seconds at intensity 1.
fn windows_per_class(intensity: f64, window_secs: u64) -> u64 {
    ((intensity * window_secs as f64 / 30.0).round() as u64).max(if intensity > 0.0 { 1 } else { 0 })
}

/// Compiles the per-shard fault schedule.
///
/// Pure function of its arguments: the same `(cfg, master_seed,
/// shard_index, window_secs)` always yields the same plan, and plans for
/// different shards are derived from independent RNG sub-streams, so
/// re-partitioning the population does not reshuffle any shard's faults.
pub fn compile_plan(
    cfg: &FaultPlanConfig,
    master_seed: u64,
    shard_index: usize,
    window_secs: u64,
) -> FaultPlan {
    let mut plan = FaultPlan::default();
    if cfg.is_off() || window_secs == 0 {
        return plan;
    }
    let intensity = cfg.intensity.clamp(0.0, 4.0);
    let mut rng = SimRng::derive(master_seed, STREAM_FAULTS ^ shard_index as u64);
    let window_ms = window_secs * 1_000;
    // Windows start after warm-up (5%) and leave a tail (20%) so every
    // restart's recovery traffic lands inside the measured run.
    let lo_ms = window_ms / 20;
    let hi_ms = window_ms * 8 / 10;
    let count = windows_per_class(intensity, window_secs);

    for class in FaultClass::ALL {
        let enabled = match class {
            FaultClass::LinkDegrade => cfg.link_degrade,
            FaultClass::NodeCrash => cfg.node_crash,
            FaultClass::Blackhole => cfg.blackhole,
        };
        // Draw the class's randomness unconditionally so enabling one
        // class never perturbs another class's schedule.
        for _ in 0..count {
            let at_ms = rng.range(lo_ms, hi_ms.max(lo_ms + 1));
            let duration_ms = 2_000 + (rng.uniform() * intensity * 8_000.0) as u64;
            let kind = match class {
                FaultClass::LinkDegrade => {
                    let link = if rng.chance(0.5) { LinkSel::Gb } else { LinkSel::Gn };
                    FaultKind::DegradeLink {
                        link,
                        added_latency: SimDuration::from_micros(
                            (rng.uniform() * intensity * 200_000.0) as u64,
                        ),
                        loss: (0.05 + 0.25 * intensity * rng.uniform()).min(0.9),
                        bandwidth_bps: 2_000_000,
                    }
                }
                FaultClass::NodeCrash => {
                    let node = NodeSel::ALL[rng.range(0, NodeSel::ALL.len() as u64) as usize];
                    FaultKind::Crash { node }
                }
                FaultClass::Blackhole => {
                    // Blackholes target the signaling path peers: the
                    // gatekeeper (RAS timeouts) or the SGSN (everything
                    // the VMSC tunnels over Gb times out).
                    let node = if rng.chance(0.5) { NodeSel::Gatekeeper } else { NodeSel::Sgsn };
                    FaultKind::Blackhole { node }
                }
            };
            if enabled {
                plan.events.push(FaultEvent { at_ms, duration_ms, kind });
            }
        }
    }

    // Deterministic order for the driver's schedule: class order (the
    // push order above) breaks (at_ms, duration_ms) ties via sort
    // stability.
    plan.events.sort_by_key(|e| (e.at_ms, e.duration_ms));
    plan
}

// ---------------------------------------------------------------------------
// Inter-shard trunk chaos
// ---------------------------------------------------------------------------

/// Sub-stream salt for inter-shard trunk chaos, disjoint from
/// [`STREAM_FAULTS`] and from every load-engine stream.
pub const STREAM_TRUNK: u64 = 0x7B0C_41E5_CAB1_E5A7_u64;

/// Multiplicative mixer for composing trunk sub-stream salts. XOR-ing
/// raw indices together collides (`src=1,dst=2` vs `src=2,dst=1`); a
/// fold through an odd multiplier keeps every `(pair, class, window)`
/// combination on its own RNG stream.
pub fn mix_salt(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The four injectable trunk failure classes. They impair the
/// epoch-barrier mailbox between a *pair* of shards — the inter-VMSC
/// E-interface trunks of the paper's Figure 9 — rather than any link
/// inside a shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TrunkFaultClass {
    /// Envelopes vanish in transit and must be retransmitted.
    Loss,
    /// Envelopes arrive twice; the receiver must suppress the copy.
    Dup,
    /// Envelopes are reshuffled within an epoch; the receiver must
    /// buffer and release in sequence order.
    Reorder,
    /// Full bidirectional partition with trapezoidal onset and heal:
    /// the drop probability ramps 0 → 1, holds, and ramps back down.
    Partition,
}

impl TrunkFaultClass {
    /// All classes, in a fixed order used for plan compilation and KPIs.
    pub const ALL: [TrunkFaultClass; 4] = [
        TrunkFaultClass::Loss,
        TrunkFaultClass::Dup,
        TrunkFaultClass::Reorder,
        TrunkFaultClass::Partition,
    ];

    /// Stable lowercase identifier used in stats keys and JSON.
    pub fn key(self) -> &'static str {
        match self {
            TrunkFaultClass::Loss => "trunk_loss",
            TrunkFaultClass::Dup => "trunk_dup",
            TrunkFaultClass::Reorder => "trunk_reorder",
            TrunkFaultClass::Partition => "trunk_partition",
        }
    }
}

/// Knobs for [`compile_trunk_plan`]. `Default` is all-off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrunkPlanConfig {
    /// Scales window count, window length and impairment level. `0.0`
    /// compiles to an empty plan; `1.0` is the nominal chaos level.
    pub intensity: f64,
    /// Enable [`TrunkFaultClass::Loss`] windows.
    pub loss: bool,
    /// Enable [`TrunkFaultClass::Dup`] windows.
    pub dup: bool,
    /// Enable [`TrunkFaultClass::Reorder`] windows.
    pub reorder: bool,
    /// Enable [`TrunkFaultClass::Partition`] windows.
    pub partition: bool,
}

impl Default for TrunkPlanConfig {
    fn default() -> Self {
        TrunkPlanConfig { intensity: 0.0, loss: false, dup: false, reorder: false, partition: false }
    }
}

impl TrunkPlanConfig {
    /// Convenience: all four classes enabled at the given intensity.
    pub fn all(intensity: f64) -> Self {
        TrunkPlanConfig { intensity, loss: true, dup: true, reorder: true, partition: true }
    }

    /// Convenience: a single class enabled at the given intensity.
    pub fn only(class: TrunkFaultClass, intensity: f64) -> Self {
        let mut cfg = TrunkPlanConfig { intensity, ..TrunkPlanConfig::default() };
        match class {
            TrunkFaultClass::Loss => cfg.loss = true,
            TrunkFaultClass::Dup => cfg.dup = true,
            TrunkFaultClass::Reorder => cfg.reorder = true,
            TrunkFaultClass::Partition => cfg.partition = true,
        }
        cfg
    }

    /// True if no window can ever be compiled from this config.
    pub fn is_off(&self) -> bool {
        self.intensity <= 0.0 || !(self.loss || self.dup || self.reorder || self.partition)
    }
}

/// One scheduled trunk impairment window on a shard pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrunkWindow {
    /// Window start, ms after the busy-hour origin.
    pub at_ms: u64,
    /// Window length in ms.
    pub duration_ms: u64,
    /// What the window does.
    pub class: TrunkFaultClass,
    /// Plateau impairment level: a probability for loss/dup/reorder,
    /// `1.0` (full drop) for partitions.
    pub level: f64,
    /// Trapezoid ramp length: the level climbs from 0 to `level` over
    /// the first `ramp_ms` and descends over the last `ramp_ms`. `0`
    /// means a square window.
    pub ramp_ms: u64,
}

impl TrunkWindow {
    /// Effective level at `t_ms`: trapezoidal interpolation inside the
    /// window, zero outside.
    pub fn level_at(&self, t_ms: u64) -> f64 {
        if t_ms < self.at_ms || t_ms >= self.at_ms + self.duration_ms {
            return 0.0;
        }
        if self.ramp_ms == 0 {
            return self.level;
        }
        let into = (t_ms - self.at_ms) as f64;
        let left = (self.at_ms + self.duration_ms - t_ms) as f64;
        let ramp = self.ramp_ms as f64;
        self.level * (into / ramp).min(left / ramp).min(1.0)
    }
}

/// A compiled trunk chaos schedule for one unordered shard pair.
/// Windows are sorted by `(at_ms, duration_ms)` with class order
/// breaking exact ties.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrunkPlan {
    /// The scheduled impairment windows.
    pub windows: Vec<TrunkWindow>,
}

impl TrunkPlan {
    /// True if the plan schedules nothing (trunk chaos disabled).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Effective level of `class` at `t_ms`: the max across windows, so
    /// overlapping windows never *reduce* an impairment.
    pub fn level_at(&self, class: TrunkFaultClass, t_ms: u64) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.class == class)
            .map(|w| w.level_at(t_ms))
            .fold(0.0, f64::max)
    }

    /// Total scheduled impairment time for a class, in ms (summed, not
    /// unioned, like [`FaultPlan::unavailability_ms`]).
    pub fn unavailability_ms(&self, class: TrunkFaultClass) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.class == class)
            .map(|w| w.duration_ms)
            .sum()
    }
}

/// Compiles the trunk chaos schedule for the unordered shard pair
/// `{a, b}`.
///
/// Pure function of its arguments, and monotone in `intensity` by
/// construction: every window's parameters are drawn from an RNG stream
/// derived from `(pair, class, window_index)` — never from the
/// intensity — so raising the intensity only *adds* windows (the count
/// grows), *lengthens* them and *raises* their levels, leaving every
/// lower-intensity window in place at the same start time. Combined
/// with the transport's stateless per-`(src, dst, seq, attempt)`
/// decision draws, a flit dropped at intensity 0.3 is also dropped at
/// 1.0 — the degradation rows in `BENCH_chaos.json` are monotone by
/// design, not by luck.
pub fn compile_trunk_plan(
    cfg: &TrunkPlanConfig,
    master_seed: u64,
    shard_a: usize,
    shard_b: usize,
    window_secs: u64,
) -> TrunkPlan {
    let mut plan = TrunkPlan::default();
    if cfg.is_off() || window_secs == 0 || shard_a == shard_b {
        return plan;
    }
    let (a, b) = if shard_a < shard_b { (shard_a, shard_b) } else { (shard_b, shard_a) };
    let intensity = cfg.intensity.clamp(0.0, 4.0);
    let window_ms = window_secs * 1_000;
    // Same warm-up (5%) / tail (20%) envelope as the intra-shard plans,
    // so every partition heals — and its re-routes land — in-run.
    let lo_ms = window_ms / 20;
    let hi_ms = window_ms * 8 / 10;
    let count = windows_per_class(intensity, window_secs);
    let pair_salt = mix_salt(mix_salt(STREAM_TRUNK, a as u64), b as u64);

    for (ci, class) in TrunkFaultClass::ALL.into_iter().enumerate() {
        let enabled = match class {
            TrunkFaultClass::Loss => cfg.loss,
            TrunkFaultClass::Dup => cfg.dup,
            TrunkFaultClass::Reorder => cfg.reorder,
            TrunkFaultClass::Partition => cfg.partition,
        };
        for w in 0..count {
            let mut rng = SimRng::derive(
                master_seed,
                mix_salt(pair_salt, (ci as u64) << 32 | w),
            );
            // Fixed draw order for every class so a window's geometry
            // is the same whichever classes are enabled.
            let at_ms = rng.range(lo_ms, hi_ms.max(lo_ms + 1));
            let dur_u = rng.uniform();
            let lvl_u = rng.uniform();
            let ramp_u = rng.uniform();
            let (duration_ms, level, ramp_ms) = match class {
                TrunkFaultClass::Loss => {
                    (2_000 + (dur_u * intensity * 8_000.0) as u64,
                     (0.10 + 0.35 * intensity * lvl_u).min(0.9), 0)
                }
                TrunkFaultClass::Dup => {
                    (2_000 + (dur_u * intensity * 8_000.0) as u64,
                     (0.10 + 0.30 * intensity * lvl_u).min(0.8), 0)
                }
                TrunkFaultClass::Reorder => {
                    (2_000 + (dur_u * intensity * 8_000.0) as u64,
                     (0.15 + 0.35 * intensity * lvl_u).min(0.9), 0)
                }
                TrunkFaultClass::Partition => {
                    // Full drop at the plateau; the trapezoid's ramp is
                    // intensity-independent so the onset shape never
                    // shifts under a stronger plan.
                    (3_000 + (dur_u * intensity * 7_000.0) as u64,
                     1.0,
                     400 + (ramp_u * 1_200.0) as u64)
                }
            };
            if enabled {
                plan.windows.push(TrunkWindow { at_ms, duration_ms, class, level, ramp_ms });
            }
        }
    }

    plan.windows.sort_by_key(|w| (w.at_ms, w.duration_ms));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_compiles_to_empty_plan() {
        let plan = compile_plan(&FaultPlanConfig::all(0.0), 42, 0, 300);
        assert!(plan.is_empty());
        let off = compile_plan(&FaultPlanConfig::default(), 42, 3, 300);
        assert!(off.is_empty());
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = FaultPlanConfig::all(1.0);
        let a = compile_plan(&cfg, 0xD15EA5E, 2, 300);
        let b = compile_plan(&cfg, 0xD15EA5E, 2, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn shards_and_seeds_get_independent_plans() {
        let cfg = FaultPlanConfig::all(1.0);
        let a = compile_plan(&cfg, 42, 0, 300);
        let b = compile_plan(&cfg, 42, 1, 300);
        let c = compile_plan(&cfg, 43, 0, 300);
        assert_ne!(a, b, "shard index must vary the plan");
        assert_ne!(a, c, "seed must vary the plan");
    }

    #[test]
    fn window_count_is_monotone_in_intensity() {
        let counts: Vec<usize> = [0.0, 0.3, 1.0, 2.0]
            .iter()
            .map(|&i| compile_plan(&FaultPlanConfig::all(i), 7, 0, 600).events.len())
            .collect();
        for pair in counts.windows(2) {
            assert!(pair[0] <= pair[1], "window count shrank: {counts:?}");
        }
        assert_eq!(counts[0], 0);
        assert!(counts[3] > counts[1]);
    }

    #[test]
    fn windows_are_sorted_bounded_and_inside_the_run() {
        let plan = compile_plan(&FaultPlanConfig::all(2.0), 99, 1, 300);
        let mut prev = 0;
        for e in &plan.events {
            assert!(e.at_ms >= prev, "plan must be sorted");
            prev = e.at_ms;
            assert!(e.at_ms >= 300_000 / 20, "window starts before warm-up");
            assert!(e.at_ms < 300_000 * 8 / 10, "window starts in the tail");
            assert!(e.duration_ms >= 2_000 && e.duration_ms <= 2_000 + 2 * 8_000);
            if let FaultKind::DegradeLink { loss, .. } = e.kind {
                assert!((0.0..=0.9).contains(&loss));
            }
        }
    }

    #[test]
    fn single_class_plans_are_a_subset_of_the_combined_plan() {
        // Enabling one class must not perturb another's schedule.
        let all = compile_plan(&FaultPlanConfig::all(1.0), 11, 0, 300);
        for class in FaultClass::ALL {
            let only = compile_plan(&FaultPlanConfig::only(class, 1.0), 11, 0, 300);
            assert!(!only.is_empty());
            for e in &only.events {
                assert!(e.kind.class() == class);
                assert!(all.events.contains(e), "{e:?} missing from combined plan");
            }
        }
    }

    #[test]
    fn unavailability_and_overlap_accounting() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_ms: 1_000,
                    duration_ms: 2_000,
                    kind: FaultKind::Crash { node: NodeSel::Sgsn },
                },
                FaultEvent {
                    at_ms: 10_000,
                    duration_ms: 3_000,
                    kind: FaultKind::Crash { node: NodeSel::Vmsc },
                },
            ],
        };
        assert_eq!(plan.unavailability_ms(FaultClass::NodeCrash), 5_000);
        assert_eq!(plan.unavailability_ms(FaultClass::Blackhole), 0);
        assert!(plan.overlaps(FaultClass::NodeCrash, 2_500, 4_000));
        assert!(!plan.overlaps(FaultClass::NodeCrash, 4_000, 9_000));
        assert!(!plan.overlaps(FaultClass::LinkDegrade, 0, 20_000));
    }

    // ---- trunk chaos ----

    #[test]
    fn trunk_zero_intensity_compiles_to_empty_plan() {
        assert!(compile_trunk_plan(&TrunkPlanConfig::all(0.0), 42, 0, 1, 300).is_empty());
        assert!(compile_trunk_plan(&TrunkPlanConfig::default(), 42, 0, 1, 300).is_empty());
        // A degenerate pair (a shard with itself) never gets a plan.
        assert!(compile_trunk_plan(&TrunkPlanConfig::all(1.0), 42, 2, 2, 300).is_empty());
    }

    #[test]
    fn trunk_plans_are_deterministic_and_pair_symmetric() {
        let cfg = TrunkPlanConfig::all(1.0);
        let a = compile_trunk_plan(&cfg, 7, 0, 1, 300);
        let b = compile_trunk_plan(&cfg, 7, 0, 1, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // The pair is unordered: (1, 0) is the same trunk as (0, 1).
        assert_eq!(a, compile_trunk_plan(&cfg, 7, 1, 0, 300));
        // Other pairs and seeds get independent plans.
        assert_ne!(a, compile_trunk_plan(&cfg, 7, 0, 2, 300));
        assert_ne!(a, compile_trunk_plan(&cfg, 8, 0, 1, 300));
    }

    #[test]
    fn trunk_single_class_plans_are_a_subset_of_the_combined_plan() {
        let all = compile_trunk_plan(&TrunkPlanConfig::all(1.0), 11, 0, 3, 300);
        for class in TrunkFaultClass::ALL {
            let only = compile_trunk_plan(&TrunkPlanConfig::only(class, 1.0), 11, 0, 3, 300);
            assert!(!only.is_empty());
            for w in &only.windows {
                assert_eq!(w.class, class);
                assert!(all.windows.contains(w), "{w:?} missing from combined plan");
            }
        }
    }

    /// The monotone-degradation cornerstone: every lower-intensity
    /// window persists at a higher intensity with the same start, a
    /// duration at least as long and a level at least as high — so the
    /// effective impairment at any instant never decreases.
    #[test]
    fn trunk_plans_are_monotone_in_intensity() {
        let lo = compile_trunk_plan(&TrunkPlanConfig::all(0.3), 5, 0, 1, 300);
        let hi = compile_trunk_plan(&TrunkPlanConfig::all(1.0), 5, 0, 1, 300);
        assert!(!lo.is_empty());
        assert!(hi.windows.len() >= lo.windows.len());
        for w in &lo.windows {
            let sup = hi
                .windows
                .iter()
                .find(|h| h.class == w.class && h.at_ms == w.at_ms)
                .unwrap_or_else(|| panic!("window at {} ms vanished at intensity 1.0", w.at_ms));
            assert!(sup.duration_ms >= w.duration_ms);
            assert!(sup.level >= w.level);
            assert_eq!(sup.ramp_ms, w.ramp_ms, "trapezoid ramp must not shift");
        }
        for t in (0..300_000).step_by(250) {
            for class in TrunkFaultClass::ALL {
                assert!(
                    hi.level_at(class, t) >= lo.level_at(class, t) - 1e-12,
                    "{class:?} level fell at {t} ms"
                );
            }
        }
    }

    #[test]
    fn trunk_partition_windows_are_trapezoidal() {
        let plan = compile_trunk_plan(
            &TrunkPlanConfig::only(TrunkFaultClass::Partition, 1.0),
            9,
            0,
            1,
            300,
        );
        let w = plan.windows.first().expect("at least one partition window");
        assert!(w.ramp_ms > 0);
        assert_eq!(w.level, 1.0);
        // Zero outside, ramping at the edges, full at the plateau.
        assert_eq!(w.level_at(w.at_ms.saturating_sub(1)), 0.0);
        assert_eq!(w.level_at(w.at_ms + w.duration_ms), 0.0);
        let mid = w.level_at(w.at_ms + w.duration_ms / 2);
        assert!((mid - 1.0).abs() < 1e-9, "plateau must be a full partition, got {mid}");
        let onset = w.level_at(w.at_ms + w.ramp_ms / 2);
        assert!(onset > 0.0 && onset < 1.0, "onset must ramp, got {onset}");
    }

    #[test]
    fn trunk_windows_are_sorted_and_inside_the_run() {
        let plan = compile_trunk_plan(&TrunkPlanConfig::all(2.0), 3, 1, 2, 300);
        let mut prev = 0;
        for w in &plan.windows {
            assert!(w.at_ms >= prev, "plan must be sorted");
            prev = w.at_ms;
            assert!(w.at_ms >= 300_000 / 20);
            assert!(w.at_ms < 300_000 * 8 / 10);
            assert!((0.0..=1.0).contains(&w.level));
        }
    }
}
