//! # vgprs-faults — deterministic fault plans for the vGPRS testbed
//!
//! The load engine exercises a *perfect* network: links never degrade,
//! nodes never restart, signaling peers always answer. This crate adds the
//! missing failure axis without giving up the repo's core invariant —
//! **bit-identical runs across thread counts and event kernels**.
//!
//! The trick is that faults are not injected by a stochastic process racing
//! the simulation; they are *compiled ahead of time* into a [`FaultPlan`]:
//! a sorted list of `(start, duration, kind)` impairment windows derived
//! purely from `(config, master_seed, shard_index)` by [`compile_plan`].
//! The load driver walks the plan exactly like it walks subscriber call
//! schedules — every injection is an ordinary driver action at a fixed
//! simulated time, so the event kernel sees the same totally-ordered event
//! stream regardless of `--threads` or `Kernel::{Heap,Wheel}`.
//!
//! Three fault classes cover the failure modes the paper's deployment
//! would meet in the field:
//!
//! * [`FaultClass::LinkDegrade`] — loss, added latency and a bandwidth
//!   clamp on the Gb (VMSC↔SGSN) or Gn (SGSN↔GGSN) link,
//! * [`FaultClass::NodeCrash`] — crash-and-restart with state loss for
//!   SGSN, GGSN, gatekeeper or VMSC, forcing cold-start re-registration,
//! * [`FaultClass::Blackhole`] — the node stays up but silently drops all
//!   signaling (RAS/ISUP requests time out instead of being rejected).
//!
//! Intensity `0.0` compiles to an **empty plan**, which the driver treats
//! as "faults disabled" — the run is then byte-for-byte identical to one
//! that never linked this crate's output at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vgprs_sim::{SimDuration, SimRng};

/// Sub-stream salt for fault-plan derivation, disjoint from the load
/// engine's shard/call/mobility streams.
pub const STREAM_FAULTS: u64 = 0x0FA1_75EE_D0DD_BA11_u64;

/// The three injectable failure classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FaultClass {
    /// Loss / latency / bandwidth impairment on a backbone link.
    LinkDegrade,
    /// Node crash with state loss, followed by a restart.
    NodeCrash,
    /// Node silently drops all traffic while keeping its state.
    Blackhole,
}

impl FaultClass {
    /// All classes, in a fixed order used for plan compilation and KPIs.
    pub const ALL: [FaultClass; 3] =
        [FaultClass::LinkDegrade, FaultClass::NodeCrash, FaultClass::Blackhole];

    /// Stable lowercase identifier used in stats keys and JSON.
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::LinkDegrade => "link_degrade",
            FaultClass::NodeCrash => "node_crash",
            FaultClass::Blackhole => "blackhole",
        }
    }
}

/// Which backbone link a [`FaultKind::DegradeLink`] impairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkSel {
    /// VMSC ↔ SGSN (all LLC-tunneled signaling and voice).
    Gb,
    /// SGSN ↔ GGSN (GTP tunnel toward the IP backbone).
    Gn,
}

/// Which network element a crash or blackhole targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeSel {
    /// Serving GPRS support node: loses MM and PDP contexts.
    Sgsn,
    /// Gateway GPRS support node: loses dynamic PDP records.
    Ggsn,
    /// H.323 gatekeeper: loses registrations and admissions.
    Gatekeeper,
    /// The paper's VMSC: loses every MS entry and active call.
    Vmsc,
}

impl NodeSel {
    const ALL: [NodeSel; 4] = [NodeSel::Sgsn, NodeSel::Ggsn, NodeSel::Gatekeeper, NodeSel::Vmsc];
}

/// A concrete impairment, parameterized by its class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Degrade a backbone link for the window's duration.
    DegradeLink {
        /// Link to impair.
        link: LinkSel,
        /// Extra one-way latency while degraded.
        added_latency: SimDuration,
        /// Loss probability applied to unreliable frames.
        loss: f64,
        /// Clamped bandwidth in bits/s (0 = leave unchanged).
        bandwidth_bps: u64,
    },
    /// Crash the node (state loss); it restarts when the window ends.
    Crash {
        /// Node to crash.
        node: NodeSel,
    },
    /// Blackhole the node (drops everything, keeps state) until the
    /// window ends.
    Blackhole {
        /// Node to silence.
        node: NodeSel,
    },
}

impl FaultKind {
    /// The class this kind belongs to.
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::DegradeLink { .. } => FaultClass::LinkDegrade,
            FaultKind::Crash { .. } => FaultClass::NodeCrash,
            FaultKind::Blackhole { .. } => FaultClass::Blackhole,
        }
    }
}

/// One scheduled impairment window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Window start, in ms of simulated time after the warm-up origin.
    pub at_ms: u64,
    /// Window length in ms; the driver restores/restarts at `at_ms +
    /// duration_ms`.
    pub duration_ms: u64,
    /// What the window does.
    pub kind: FaultKind,
}

/// Knobs for [`compile_plan`]. `Default` is all-off (zero intensity).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlanConfig {
    /// Scales both the number of windows and their severity. `0.0`
    /// compiles to an empty plan; `1.0` is the nominal chaos level.
    pub intensity: f64,
    /// Enable [`FaultClass::LinkDegrade`] windows.
    pub link_degrade: bool,
    /// Enable [`FaultClass::NodeCrash`] windows.
    pub node_crash: bool,
    /// Enable [`FaultClass::Blackhole`] windows.
    pub blackhole: bool,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig { intensity: 0.0, link_degrade: false, node_crash: false, blackhole: false }
    }
}

impl FaultPlanConfig {
    /// Convenience: all three classes enabled at the given intensity.
    pub fn all(intensity: f64) -> Self {
        FaultPlanConfig { intensity, link_degrade: true, node_crash: true, blackhole: true }
    }

    /// Convenience: a single class enabled at the given intensity.
    pub fn only(class: FaultClass, intensity: f64) -> Self {
        let mut cfg = FaultPlanConfig { intensity, ..FaultPlanConfig::default() };
        match class {
            FaultClass::LinkDegrade => cfg.link_degrade = true,
            FaultClass::NodeCrash => cfg.node_crash = true,
            FaultClass::Blackhole => cfg.blackhole = true,
        }
        cfg
    }

    /// True if no window can ever be compiled from this config.
    pub fn is_off(&self) -> bool {
        self.intensity <= 0.0 || !(self.link_degrade || self.node_crash || self.blackhole)
    }
}

/// A compiled, per-shard fault schedule. Windows are sorted by
/// `(at_ms, duration_ms)` with class order breaking exact ties.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled impairment windows.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// True if the plan schedules nothing (faults disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total scheduled impairment time for a class, in ms. Overlapping
    /// windows are summed, not unioned: the KPI measures injected fault
    /// exposure, not wall-clock outage.
    pub fn unavailability_ms(&self, class: FaultClass) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.class() == class)
            .map(|e| e.duration_ms)
            .sum()
    }

    /// True if `[from_ms, to_ms]` overlaps any window of `class`.
    pub fn overlaps(&self, class: FaultClass, from_ms: u64, to_ms: u64) -> bool {
        self.events.iter().any(|e| {
            e.kind.class() == class && e.at_ms <= to_ms && from_ms <= e.at_ms + e.duration_ms
        })
    }
}

/// Number of windows a class gets at the given intensity over `window_secs`
/// of busy hour: roughly one per 30 simulated seconds at intensity 1.
fn windows_per_class(intensity: f64, window_secs: u64) -> u64 {
    ((intensity * window_secs as f64 / 30.0).round() as u64).max(if intensity > 0.0 { 1 } else { 0 })
}

/// Compiles the per-shard fault schedule.
///
/// Pure function of its arguments: the same `(cfg, master_seed,
/// shard_index, window_secs)` always yields the same plan, and plans for
/// different shards are derived from independent RNG sub-streams, so
/// re-partitioning the population does not reshuffle any shard's faults.
pub fn compile_plan(
    cfg: &FaultPlanConfig,
    master_seed: u64,
    shard_index: usize,
    window_secs: u64,
) -> FaultPlan {
    let mut plan = FaultPlan::default();
    if cfg.is_off() || window_secs == 0 {
        return plan;
    }
    let intensity = cfg.intensity.clamp(0.0, 4.0);
    let mut rng = SimRng::derive(master_seed, STREAM_FAULTS ^ shard_index as u64);
    let window_ms = window_secs * 1_000;
    // Windows start after warm-up (5%) and leave a tail (20%) so every
    // restart's recovery traffic lands inside the measured run.
    let lo_ms = window_ms / 20;
    let hi_ms = window_ms * 8 / 10;
    let count = windows_per_class(intensity, window_secs);

    for class in FaultClass::ALL {
        let enabled = match class {
            FaultClass::LinkDegrade => cfg.link_degrade,
            FaultClass::NodeCrash => cfg.node_crash,
            FaultClass::Blackhole => cfg.blackhole,
        };
        // Draw the class's randomness unconditionally so enabling one
        // class never perturbs another class's schedule.
        for _ in 0..count {
            let at_ms = rng.range(lo_ms, hi_ms.max(lo_ms + 1));
            let duration_ms = 2_000 + (rng.uniform() * intensity * 8_000.0) as u64;
            let kind = match class {
                FaultClass::LinkDegrade => {
                    let link = if rng.chance(0.5) { LinkSel::Gb } else { LinkSel::Gn };
                    FaultKind::DegradeLink {
                        link,
                        added_latency: SimDuration::from_micros(
                            (rng.uniform() * intensity * 200_000.0) as u64,
                        ),
                        loss: (0.05 + 0.25 * intensity * rng.uniform()).min(0.9),
                        bandwidth_bps: 2_000_000,
                    }
                }
                FaultClass::NodeCrash => {
                    let node = NodeSel::ALL[rng.range(0, NodeSel::ALL.len() as u64) as usize];
                    FaultKind::Crash { node }
                }
                FaultClass::Blackhole => {
                    // Blackholes target the signaling path peers: the
                    // gatekeeper (RAS timeouts) or the SGSN (everything
                    // the VMSC tunnels over Gb times out).
                    let node = if rng.chance(0.5) { NodeSel::Gatekeeper } else { NodeSel::Sgsn };
                    FaultKind::Blackhole { node }
                }
            };
            if enabled {
                plan.events.push(FaultEvent { at_ms, duration_ms, kind });
            }
        }
    }

    // Deterministic order for the driver's schedule: class order (the
    // push order above) breaks (at_ms, duration_ms) ties via sort
    // stability.
    plan.events.sort_by_key(|e| (e.at_ms, e.duration_ms));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_compiles_to_empty_plan() {
        let plan = compile_plan(&FaultPlanConfig::all(0.0), 42, 0, 300);
        assert!(plan.is_empty());
        let off = compile_plan(&FaultPlanConfig::default(), 42, 3, 300);
        assert!(off.is_empty());
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = FaultPlanConfig::all(1.0);
        let a = compile_plan(&cfg, 0xD15EA5E, 2, 300);
        let b = compile_plan(&cfg, 0xD15EA5E, 2, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn shards_and_seeds_get_independent_plans() {
        let cfg = FaultPlanConfig::all(1.0);
        let a = compile_plan(&cfg, 42, 0, 300);
        let b = compile_plan(&cfg, 42, 1, 300);
        let c = compile_plan(&cfg, 43, 0, 300);
        assert_ne!(a, b, "shard index must vary the plan");
        assert_ne!(a, c, "seed must vary the plan");
    }

    #[test]
    fn window_count_is_monotone_in_intensity() {
        let counts: Vec<usize> = [0.0, 0.3, 1.0, 2.0]
            .iter()
            .map(|&i| compile_plan(&FaultPlanConfig::all(i), 7, 0, 600).events.len())
            .collect();
        for pair in counts.windows(2) {
            assert!(pair[0] <= pair[1], "window count shrank: {counts:?}");
        }
        assert_eq!(counts[0], 0);
        assert!(counts[3] > counts[1]);
    }

    #[test]
    fn windows_are_sorted_bounded_and_inside_the_run() {
        let plan = compile_plan(&FaultPlanConfig::all(2.0), 99, 1, 300);
        let mut prev = 0;
        for e in &plan.events {
            assert!(e.at_ms >= prev, "plan must be sorted");
            prev = e.at_ms;
            assert!(e.at_ms >= 300_000 / 20, "window starts before warm-up");
            assert!(e.at_ms < 300_000 * 8 / 10, "window starts in the tail");
            assert!(e.duration_ms >= 2_000 && e.duration_ms <= 2_000 + 2 * 8_000);
            if let FaultKind::DegradeLink { loss, .. } = e.kind {
                assert!((0.0..=0.9).contains(&loss));
            }
        }
    }

    #[test]
    fn single_class_plans_are_a_subset_of_the_combined_plan() {
        // Enabling one class must not perturb another's schedule.
        let all = compile_plan(&FaultPlanConfig::all(1.0), 11, 0, 300);
        for class in FaultClass::ALL {
            let only = compile_plan(&FaultPlanConfig::only(class, 1.0), 11, 0, 300);
            assert!(!only.is_empty());
            for e in &only.events {
                assert!(e.kind.class() == class);
                assert!(all.events.contains(e), "{e:?} missing from combined plan");
            }
        }
    }

    #[test]
    fn unavailability_and_overlap_accounting() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_ms: 1_000,
                    duration_ms: 2_000,
                    kind: FaultKind::Crash { node: NodeSel::Sgsn },
                },
                FaultEvent {
                    at_ms: 10_000,
                    duration_ms: 3_000,
                    kind: FaultKind::Crash { node: NodeSel::Vmsc },
                },
            ],
        };
        assert_eq!(plan.unavailability_ms(FaultClass::NodeCrash), 5_000);
        assert_eq!(plan.unavailability_ms(FaultClass::Blackhole), 0);
        assert!(plan.overlaps(FaultClass::NodeCrash, 2_500, 4_000));
        assert!(!plan.overlaps(FaultClass::NodeCrash, 4_000, 9_000));
        assert!(!plan.overlaps(FaultClass::LinkDegrade, 0, 20_000));
    }
}
