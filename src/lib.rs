//! # vGPRS — Voice over GPRS, reproduced
//!
//! Umbrella crate re-exporting the whole vGPRS reproduction workspace.
//! See the repository README and `DESIGN.md` for the architecture, and the
//! `examples/` directory for runnable scenarios.

#![forbid(unsafe_code)]

pub use vgprs_core as core;
pub use vgprs_gprs as gprs;
pub use vgprs_gsm as gsm;
pub use vgprs_h323 as h323;
pub use vgprs_load as load;
pub use vgprs_media as media;
pub use vgprs_pstn as pstn;
pub use vgprs_sim as sim;
pub use vgprs_tr22973 as tr22973;
pub use vgprs_wire as wire;
